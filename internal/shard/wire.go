package shard

import (
	"errors"
	"fmt"
	"io"
	"math"

	"time"
	"tkij/internal/interval"
	"tkij/internal/join"
	"tkij/internal/query"
	"tkij/internal/scoring"
	"tkij/internal/stats"
	"tkij/internal/store"
	"tkij/internal/topbuckets"
)

// The wire protocol: every message is one frame — a u64 payload length,
// then the payload: a u64 frame kind followed by the kind's fixed-width
// little-endian body (the same word codec snapshots use, see
// internal/interval's binary reader). Decoding is strict: every count
// is bounded by the bytes actually present, booleans must be 0 or 1,
// enum tags must be known, and a payload must be consumed exactly — so
// a successful decode re-encodes byte-identically (the FuzzShardWire
// contract) and a torn or tampered frame fails loudly instead of
// executing a half-read query.

// Sentinel errors — the coordinator's fault taxonomy. Every failed
// scatter-gather wraps exactly one of these (plus context.Canceled /
// DeadlineExceeded for caller-initiated aborts), and a failed query
// never returns partial results.
var (
	// ErrWorkerLost marks a worker connection that closed or reset
	// between frames — a crashed or exited worker.
	ErrWorkerLost = errors.New("shard: worker lost")
	// ErrProtocol marks a malformed, torn, or truncated frame on either
	// side of a link.
	ErrProtocol = errors.New("shard: wire protocol violation")
	// ErrEpochMismatch marks a worker whose replica store was not at the
	// epoch a query or append expected — the shards diverged.
	ErrEpochMismatch = errors.New("shard: replica epoch mismatch")
	// ErrFloorReplay marks a floor broadcast for a query id the worker
	// never admitted — a replayed or fabricated frame.
	ErrFloorReplay = errors.New("shard: floor broadcast replay")
	// ErrRemote marks a worker-side execution failure (reported via an
	// error frame, not a dead link).
	ErrRemote = errors.New("shard: worker execution failed")
)

// MaxFrameSize bounds one frame's payload; a length prefix beyond it is
// a protocol violation, so a torn frame cannot demand an absurd
// allocation.
const MaxFrameSize = 1 << 30

// Frame kinds.
const (
	kindLoad uint64 = iota + 1
	kindAppend
	kindQuery
	kindFloor
	kindResult
	kindError
)

// Worker error-frame codes.
const (
	// CodeExec: a reducer failed on the worker.
	CodeExec uint64 = iota
	// CodeEpoch: the worker's replica epoch disagreed with the frame.
	CodeEpoch
	// CodeFloorReplay: a floor broadcast named a never-admitted query.
	CodeFloorReplay
	// CodeLoad: a load or append could not be applied.
	CodeLoad
)

// Frame is one wire message.
type Frame interface {
	kind() uint64
	appendBody(dst []byte) ([]byte, error)
}

// errf wraps a decode failure in ErrProtocol.
func errf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrProtocol, fmt.Sprintf(format, args...))
}

// EncodeFrame serializes f with its length prefix.
func EncodeFrame(f Frame) ([]byte, error) {
	dst := interval.AppendU64(nil, 0) // length, backfilled below
	dst = interval.AppendU64(dst, f.kind())
	dst, err := f.appendBody(dst)
	if err != nil {
		return nil, err
	}
	if len(dst)-8 > MaxFrameSize {
		return nil, errf("frame payload of %d bytes exceeds limit", len(dst)-8)
	}
	interval.PutU64(dst[:8], uint64(len(dst)-8))
	return dst, nil
}

// DecodeFrame decodes the first frame in b, returning it and the number
// of bytes consumed. A successful decode re-encodes to exactly b[:n].
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < 8 {
		return nil, 0, errf("frame header short: %d bytes", len(b))
	}
	r := interval.NewBinaryReader(b[:8])
	n := r.U64()
	if n < 8 || n > MaxFrameSize {
		return nil, 0, errf("frame payload length %d out of range", n)
	}
	if uint64(len(b)-8) < n {
		return nil, 0, errf("frame payload short: want %d bytes, have %d", n, len(b)-8)
	}
	f, err := decodePayload(b[8 : 8+n])
	if err != nil {
		return nil, 0, err
	}
	return f, int(8 + n), nil
}

// ReadFrame reads and decodes one frame from r. A clean EOF at a frame
// boundary returns io.EOF; an EOF inside a frame returns
// io.ErrUnexpectedEOF (a torn frame).
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, errf("frame header torn: %v", err)
		}
		return nil, err
	}
	br := interval.NewBinaryReader(hdr[:])
	n := br.U64()
	if n < 8 || n > MaxFrameSize {
		return nil, errf("frame payload length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, errf("frame payload torn after header: %v", err)
		}
		return nil, err
	}
	return decodePayload(buf)
}

func decodePayload(p []byte) (Frame, error) {
	r := interval.NewBinaryReader(p)
	kind := r.U64()
	if err := r.Err(); err != nil {
		return nil, errf("reading frame kind: %v", err)
	}
	var (
		f   Frame
		err error
	)
	switch kind {
	case kindLoad:
		f, err = decodeLoad(r)
	case kindAppend:
		f, err = decodeAppend(r)
	case kindQuery:
		f, err = decodeQuery(r)
	case kindFloor:
		f, err = decodeFloor(r)
	case kindResult:
		f, err = decodeResult(r)
	case kindError:
		f, err = decodeError(r)
	default:
		return nil, errf("unknown frame kind %d", kind)
	}
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, errf("frame kind %d has %d trailing bytes", kind, r.Len())
	}
	return f, nil
}

// --- scalar helpers -------------------------------------------------

func appendF64(dst []byte, v float64) []byte {
	return interval.AppendU64(dst, math.Float64bits(v))
}

func readF64(r *interval.BinaryReader) float64 {
	return math.Float64frombits(r.U64())
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return interval.AppendU64(dst, 1)
	}
	return interval.AppendU64(dst, 0)
}

func readBool(r *interval.BinaryReader, what string) (bool, error) {
	v := r.U64()
	if err := r.Err(); err != nil {
		return false, errf("reading %s: %v", what, err)
	}
	if v > 1 {
		return false, errf("%s flag is %d, want 0 or 1", what, v)
	}
	return v == 1, nil
}

func appendString(dst []byte, s string) []byte {
	dst = interval.AppendU64(dst, uint64(len(s)))
	return append(dst, s...)
}

func readString(r *interval.BinaryReader, what string) (string, error) {
	n := r.U64()
	if err := r.Err(); err != nil {
		return "", errf("reading %s length: %v", what, err)
	}
	if n > uint64(r.Len()) {
		return "", errf("%s declares %d bytes, payload holds %d", what, n, r.Len())
	}
	b := r.Bytes(int(n))
	if err := r.Err(); err != nil {
		return "", errf("reading %s: %v", what, err)
	}
	return string(b), nil
}

func appendIntSlice(dst []byte, v []int) []byte {
	dst = interval.AppendU64(dst, uint64(len(v)))
	for _, x := range v {
		dst = interval.AppendI64(dst, int64(x))
	}
	return dst
}

func readIntSlice(r *interval.BinaryReader, what string) ([]int, error) {
	n := r.U64()
	if err := r.Err(); err != nil {
		return nil, errf("reading %s count: %v", what, err)
	}
	if n > uint64(r.Len()/8) {
		return nil, errf("%s declares %d entries, payload holds at most %d", what, n, r.Len()/8)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.I64())
	}
	if err := r.Err(); err != nil {
		return nil, errf("reading %s: %v", what, err)
	}
	return out, nil
}

func appendIntervalsLP(dst []byte, ivs []interval.Interval) []byte {
	dst = interval.AppendU64(dst, uint64(len(ivs)))
	return interval.AppendIntervals(dst, ivs)
}

func readIntervalsLP(r *interval.BinaryReader, what string) ([]interval.Interval, error) {
	n := r.U64()
	if err := r.Err(); err != nil {
		return nil, errf("reading %s count: %v", what, err)
	}
	if n > uint64(r.Len()/interval.BinaryIntervalSize) {
		return nil, errf("%s declares %d intervals, payload holds at most %d",
			what, n, r.Len()/interval.BinaryIntervalSize)
	}
	b := r.Bytes(int(n) * interval.BinaryIntervalSize)
	if err := r.Err(); err != nil {
		return nil, errf("reading %s: %v", what, err)
	}
	ivs, err := interval.DecodeIntervals(b)
	if err != nil {
		return nil, errf("%s: %v", what, err)
	}
	return ivs, nil
}

func appendGrid(dst []byte, g stats.Grid) []byte {
	dst = stats.AppendGranulation(dst, g.Gran)
	dst = interval.AppendI64(dst, int64(g.Lo))
	dst = interval.AppendI64(dst, int64(g.Hi))
	return dst
}

func readGrid(r *interval.BinaryReader) (stats.Grid, error) {
	gran, err := stats.ReadGranulation(r)
	if err != nil {
		return stats.Grid{}, errf("reading grid granulation: %v", err)
	}
	lo, hi := r.I64(), r.I64()
	if err := r.Err(); err != nil {
		return stats.Grid{}, errf("reading grid bounds: %v", err)
	}
	return stats.Grid{Gran: gran, Lo: interval.Timestamp(lo), Hi: interval.Timestamp(hi)}, nil
}

// --- LoadFrame ------------------------------------------------------

// LoadFrame bootstraps a worker: its shard identity and its owned slice
// of the coordinator's bucket partition, one PartitionCol per
// collection (empty for collections the shard owns nothing of).
type LoadFrame struct {
	ShardID int
	Shards  int
	Cols    []store.PartitionCol
}

func (*LoadFrame) kind() uint64 { return kindLoad }

func (f *LoadFrame) appendBody(dst []byte) ([]byte, error) {
	dst = interval.AppendI64(dst, int64(f.ShardID))
	dst = interval.AppendI64(dst, int64(f.Shards))
	dst = interval.AppendU64(dst, uint64(len(f.Cols)))
	for _, pc := range f.Cols {
		dst = interval.AppendI64(dst, int64(pc.Col))
		dst = stats.AppendGranulation(dst, pc.Gran)
		dst = interval.AppendU64(dst, uint64(len(pc.Buckets)))
		for _, bs := range pc.Buckets {
			dst = interval.AppendI64(dst, int64(bs.StartG))
			dst = interval.AppendI64(dst, int64(bs.EndG))
			dst = appendIntervalsLP(dst, bs.Items)
		}
	}
	return dst, nil
}

func decodeLoad(r *interval.BinaryReader) (*LoadFrame, error) {
	shardID, shards := r.I64(), r.I64()
	nCols := r.U64()
	if err := r.Err(); err != nil {
		return nil, errf("reading load header: %v", err)
	}
	if shards < 1 || shardID < 0 || shardID >= shards {
		return nil, errf("load names shard %d of %d", shardID, shards)
	}
	if nCols > uint64(r.Len()/8) {
		return nil, errf("load declares %d collections, payload holds at most %d", nCols, r.Len()/8)
	}
	f := &LoadFrame{ShardID: int(shardID), Shards: int(shards), Cols: make([]store.PartitionCol, nCols)}
	for i := range f.Cols {
		col := r.I64()
		gran, err := stats.ReadGranulation(r)
		if err != nil {
			return nil, errf("reading load collection %d granulation: %v", i, err)
		}
		nBuckets := r.U64()
		if err := r.Err(); err != nil {
			return nil, errf("reading load collection %d: %v", i, err)
		}
		if col != int64(i) {
			return nil, errf("load collection %d declared as %d", i, col)
		}
		if nBuckets > uint64(r.Len()/24) {
			return nil, errf("load collection %d declares %d buckets, payload holds at most %d",
				i, nBuckets, r.Len()/24)
		}
		pc := store.PartitionCol{Col: i, Gran: gran, Buckets: make([]store.BucketSlice, nBuckets)}
		for j := range pc.Buckets {
			sg, eg := r.I64(), r.I64()
			items, err := readIntervalsLP(r, fmt.Sprintf("load bucket (%d,%d,%d)", i, sg, eg))
			if err != nil {
				return nil, err
			}
			pc.Buckets[j] = store.BucketSlice{StartG: int(sg), EndG: int(eg), Items: items}
		}
		f.Cols[i] = pc
	}
	if err := r.Err(); err != nil {
		return nil, errf("reading load frame: %v", err)
	}
	return f, nil
}

// --- AppendFrame ----------------------------------------------------

// AppendFrame extends a worker's replica: the shard-owned slice of one
// coordinator Append batch (possibly empty — every append bumps every
// replica's epoch so the fleet stays in lockstep), plus the epoch the
// replica must land on after applying it.
type AppendFrame struct {
	Epoch int64
	Col   int
	Items []interval.Interval
}

func (*AppendFrame) kind() uint64 { return kindAppend }

func (f *AppendFrame) appendBody(dst []byte) ([]byte, error) {
	dst = interval.AppendI64(dst, f.Epoch)
	dst = interval.AppendI64(dst, int64(f.Col))
	dst = appendIntervalsLP(dst, f.Items)
	return dst, nil
}

func decodeAppend(r *interval.BinaryReader) (*AppendFrame, error) {
	epoch, col := r.I64(), r.I64()
	if err := r.Err(); err != nil {
		return nil, errf("reading append header: %v", err)
	}
	if col < 0 {
		return nil, errf("append names collection %d", col)
	}
	items, err := readIntervalsLP(r, "append batch")
	if err != nil {
		return nil, err
	}
	return &AppendFrame{Epoch: epoch, Col: int(col), Items: items}, nil
}

// --- QueryFrame -----------------------------------------------------

// ReducerTask is one reducer's share of a query on one shard: the
// reducer index and the indexes (into QueryFrame.Combos) of the
// combinations DTB assigned to it.
type ReducerTask struct {
	Reducer int
	Combos  []int
}

// ShippedBucket carries one collection-scoped bucket a shard's reducers
// need but the shard does not own, resident items included.
type ShippedBucket struct {
	Col, StartG, EndG int
	Items             []interval.Interval
}

// QueryFrame scatters one query to one shard: the query itself, the
// pinned epoch the worker must serve it at, the vertex→collection
// mapping and per-vertex grids, the selected combinations, this shard's
// reducer tasks, and the foreign buckets shipped for them. Floor seeds
// the worker's score floor; DisablePruning turns the floor machinery
// off entirely and NoFloorUplink keeps the floor local to the worker
// (the broadcast ablation).
type QueryFrame struct {
	QueryID        uint64
	Epoch          int64
	K              int
	Floor          float64
	DisableIndex   bool
	DisablePruning bool
	NoFloorUplink  bool
	Query          *query.Query
	Mapping        []int
	Grids          []stats.Grid
	Combos         []topbuckets.Combo
	Tasks          []ReducerTask
	Shipped        []ShippedBucket
}

func (*QueryFrame) kind() uint64 { return kindQuery }

func (f *QueryFrame) appendBody(dst []byte) ([]byte, error) {
	dst = interval.AppendU64(dst, f.QueryID)
	dst = interval.AppendI64(dst, f.Epoch)
	dst = interval.AppendI64(dst, int64(f.K))
	dst = appendF64(dst, f.Floor)
	dst = appendBool(dst, f.DisableIndex)
	dst = appendBool(dst, f.DisablePruning)
	dst = appendBool(dst, f.NoFloorUplink)
	dst, err := appendQuery(dst, f.Query)
	if err != nil {
		return nil, err
	}
	dst = appendIntSlice(dst, f.Mapping)
	dst = interval.AppendU64(dst, uint64(len(f.Grids)))
	for _, g := range f.Grids {
		dst = appendGrid(dst, g)
	}
	dst = interval.AppendU64(dst, uint64(len(f.Combos)))
	for _, c := range f.Combos {
		dst = interval.AppendU64(dst, uint64(len(c.Buckets)))
		for _, b := range c.Buckets {
			dst = interval.AppendI64(dst, int64(b.Col))
			dst = interval.AppendI64(dst, int64(b.StartG))
			dst = interval.AppendI64(dst, int64(b.EndG))
			dst = interval.AppendI64(dst, int64(b.Count))
		}
		dst = appendF64(dst, c.LB)
		dst = appendF64(dst, c.UB)
		dst = appendF64(dst, c.NbRes)
	}
	dst = interval.AppendU64(dst, uint64(len(f.Tasks)))
	for _, t := range f.Tasks {
		dst = interval.AppendI64(dst, int64(t.Reducer))
		dst = appendIntSlice(dst, t.Combos)
	}
	dst = interval.AppendU64(dst, uint64(len(f.Shipped)))
	for _, sb := range f.Shipped {
		dst = interval.AppendI64(dst, int64(sb.Col))
		dst = interval.AppendI64(dst, int64(sb.StartG))
		dst = interval.AppendI64(dst, int64(sb.EndG))
		dst = appendIntervalsLP(dst, sb.Items)
	}
	return dst, nil
}

func decodeQuery(r *interval.BinaryReader) (*QueryFrame, error) {
	f := &QueryFrame{}
	f.QueryID = r.U64()
	f.Epoch = r.I64()
	k := r.I64()
	f.Floor = readF64(r)
	if err := r.Err(); err != nil {
		return nil, errf("reading query header: %v", err)
	}
	if k < 1 {
		return nil, errf("query k = %d, want >= 1", k)
	}
	f.K = int(k)
	var err error
	if f.DisableIndex, err = readBool(r, "disable-index"); err != nil {
		return nil, err
	}
	if f.DisablePruning, err = readBool(r, "disable-pruning"); err != nil {
		return nil, err
	}
	if f.NoFloorUplink, err = readBool(r, "no-floor-uplink"); err != nil {
		return nil, err
	}
	if f.Query, err = readQuery(r); err != nil {
		return nil, err
	}
	if f.Mapping, err = readIntSlice(r, "vertex mapping"); err != nil {
		return nil, err
	}
	for i, c := range f.Mapping {
		if c < 0 {
			return nil, errf("vertex %d maps to collection %d", i, c)
		}
	}
	nGrids := r.U64()
	if err := r.Err(); err != nil {
		return nil, errf("reading grid count: %v", err)
	}
	if nGrids > uint64(r.Len()/40) {
		return nil, errf("query declares %d grids, payload holds at most %d", nGrids, r.Len()/40)
	}
	f.Grids = make([]stats.Grid, nGrids)
	for i := range f.Grids {
		if f.Grids[i], err = readGrid(r); err != nil {
			return nil, err
		}
	}
	nCombos := r.U64()
	if err := r.Err(); err != nil {
		return nil, errf("reading combo count: %v", err)
	}
	if nCombos > uint64(r.Len()/32) {
		return nil, errf("query declares %d combos, payload holds at most %d", nCombos, r.Len()/32)
	}
	f.Combos = make([]topbuckets.Combo, nCombos)
	for i := range f.Combos {
		nb := r.U64()
		if err := r.Err(); err != nil {
			return nil, errf("reading combo %d: %v", i, err)
		}
		if nb > uint64(r.Len()/32) {
			return nil, errf("combo %d declares %d buckets, payload holds at most %d", i, nb, r.Len()/32)
		}
		c := topbuckets.Combo{Buckets: make([]stats.Bucket, nb)}
		for j := range c.Buckets {
			c.Buckets[j] = stats.Bucket{
				Col:    int(r.I64()),
				StartG: int(r.I64()),
				EndG:   int(r.I64()),
				Count:  int(r.I64()),
			}
		}
		c.LB = readF64(r)
		c.UB = readF64(r)
		c.NbRes = readF64(r)
		if err := r.Err(); err != nil {
			return nil, errf("reading combo %d: %v", i, err)
		}
		f.Combos[i] = c
	}
	nTasks := r.U64()
	if err := r.Err(); err != nil {
		return nil, errf("reading task count: %v", err)
	}
	if nTasks > uint64(r.Len()/16) {
		return nil, errf("query declares %d tasks, payload holds at most %d", nTasks, r.Len()/16)
	}
	f.Tasks = make([]ReducerTask, nTasks)
	for i := range f.Tasks {
		rj := r.I64()
		if err := r.Err(); err != nil {
			return nil, errf("reading task %d: %v", i, err)
		}
		if rj < 0 {
			return nil, errf("task %d names reducer %d", i, rj)
		}
		combos, err := readIntSlice(r, fmt.Sprintf("task %d combos", i))
		if err != nil {
			return nil, err
		}
		for _, ci := range combos {
			if ci < 0 || ci >= len(f.Combos) {
				return nil, errf("task %d references combo %d of %d", i, ci, len(f.Combos))
			}
		}
		f.Tasks[i] = ReducerTask{Reducer: int(rj), Combos: combos}
	}
	nShipped := r.U64()
	if err := r.Err(); err != nil {
		return nil, errf("reading shipped count: %v", err)
	}
	if nShipped > uint64(r.Len()/32) {
		return nil, errf("query declares %d shipped buckets, payload holds at most %d", nShipped, r.Len()/32)
	}
	f.Shipped = make([]ShippedBucket, nShipped)
	for i := range f.Shipped {
		col, sg, eg := r.I64(), r.I64(), r.I64()
		items, err := readIntervalsLP(r, fmt.Sprintf("shipped bucket (%d,%d,%d)", col, sg, eg))
		if err != nil {
			return nil, err
		}
		if col < 0 {
			return nil, errf("shipped bucket %d names collection %d", i, col)
		}
		f.Shipped[i] = ShippedBucket{Col: int(col), StartG: int(sg), EndG: int(eg), Items: items}
	}
	return f, nil
}

func appendQuery(dst []byte, q *query.Query) ([]byte, error) {
	if q == nil {
		return nil, fmt.Errorf("shard: query frame has no query")
	}
	dst = appendString(dst, q.Name)
	dst = interval.AppendI64(dst, int64(q.NumVertices))
	dst = interval.AppendU64(dst, uint64(len(q.Edges)))
	for _, e := range q.Edges {
		dst = interval.AppendI64(dst, int64(e.From))
		dst = interval.AppendI64(dst, int64(e.To))
		dst = appendString(dst, e.Pred.Name)
		dst = interval.AppendU64(dst, uint64(len(e.Pred.Terms)))
		for _, t := range e.Pred.Terms {
			dst = interval.AppendU64(dst, uint64(t.Kind))
			dst = appendExpr(dst, t.Left)
			dst = appendExpr(dst, t.Right)
			dst = appendF64(dst, t.P.Lambda)
			dst = appendF64(dst, t.P.Rho)
		}
	}
	return appendAgg(dst, q.Agg)
}

func readQuery(r *interval.BinaryReader) (*query.Query, error) {
	name, err := readString(r, "query name")
	if err != nil {
		return nil, err
	}
	nv := r.I64()
	nEdges := r.U64()
	if err := r.Err(); err != nil {
		return nil, errf("reading query graph header: %v", err)
	}
	if nEdges > uint64(r.Len()/32) {
		return nil, errf("query declares %d edges, payload holds at most %d", nEdges, r.Len()/32)
	}
	edges := make([]query.Edge, nEdges)
	for i := range edges {
		from, to := r.I64(), r.I64()
		predName, err := readString(r, fmt.Sprintf("edge %d predicate name", i))
		if err != nil {
			return nil, err
		}
		nTerms := r.U64()
		if err := r.Err(); err != nil {
			return nil, errf("reading edge %d: %v", i, err)
		}
		if nTerms > uint64(r.Len()/104) {
			return nil, errf("edge %d declares %d terms, payload holds at most %d", i, nTerms, r.Len()/104)
		}
		terms := make([]scoring.Term, nTerms)
		for j := range terms {
			kind := r.U64()
			if err := r.Err(); err != nil {
				return nil, errf("reading edge %d term %d: %v", i, j, err)
			}
			if kind > uint64(scoring.CompGreater) {
				return nil, errf("edge %d term %d kind %d unknown", i, j, kind)
			}
			left := readExpr(r)
			right := readExpr(r)
			p := scoring.Params{Lambda: readF64(r), Rho: readF64(r)}
			if err := r.Err(); err != nil {
				return nil, errf("reading edge %d term %d: %v", i, j, err)
			}
			terms[j] = scoring.NewTerm(scoring.CompKind(kind), left, right, p)
		}
		edges[i] = query.Edge{
			From: int(from), To: int(to),
			Pred: &scoring.Predicate{Name: predName, Terms: terms},
		}
	}
	agg, err := readAgg(r)
	if err != nil {
		return nil, err
	}
	q, err := query.New(name, int(nv), edges, agg)
	if err != nil {
		return nil, errf("decoded query invalid: %v", err)
	}
	return q, nil
}

func appendExpr(dst []byte, e scoring.LinearExpr) []byte {
	for _, c := range e.Coef {
		dst = appendF64(dst, c)
	}
	return appendF64(dst, e.Const)
}

func readExpr(r *interval.BinaryReader) scoring.LinearExpr {
	var e scoring.LinearExpr
	for i := range e.Coef {
		e.Coef[i] = readF64(r)
	}
	e.Const = readF64(r)
	return e
}

// Aggregator tags.
const (
	aggAvg uint64 = iota
	aggSum
	aggMin
	aggWeightedSum
)

func appendAgg(dst []byte, agg scoring.Aggregator) ([]byte, error) {
	switch a := agg.(type) {
	case scoring.Avg:
		return interval.AppendU64(dst, aggAvg), nil
	case scoring.Sum:
		return interval.AppendU64(dst, aggSum), nil
	case scoring.Min:
		return interval.AppendU64(dst, aggMin), nil
	case *scoring.WeightedSum:
		dst = interval.AppendU64(dst, aggWeightedSum)
		dst = interval.AppendU64(dst, uint64(len(a.Weights)))
		for _, w := range a.Weights {
			dst = appendF64(dst, w)
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("shard: aggregator %T does not cross the wire", agg)
	}
}

func readAgg(r *interval.BinaryReader) (scoring.Aggregator, error) {
	tag := r.U64()
	if err := r.Err(); err != nil {
		return nil, errf("reading aggregator tag: %v", err)
	}
	switch tag {
	case aggAvg:
		return scoring.Avg{}, nil
	case aggSum:
		return scoring.Sum{}, nil
	case aggMin:
		return scoring.Min{}, nil
	case aggWeightedSum:
		n := r.U64()
		if err := r.Err(); err != nil {
			return nil, errf("reading weight count: %v", err)
		}
		if n > uint64(r.Len()/8) {
			return nil, errf("aggregator declares %d weights, payload holds at most %d", n, r.Len()/8)
		}
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = readF64(r)
		}
		if err := r.Err(); err != nil {
			return nil, errf("reading weights: %v", err)
		}
		ws, err := scoring.NewWeightedSum(weights)
		if err != nil {
			return nil, errf("decoded aggregator invalid: %v", err)
		}
		return ws, nil
	default:
		return nil, errf("unknown aggregator tag %d", tag)
	}
}

// --- FloorFrame -----------------------------------------------------

// FloorFrame carries one score-floor raise, in either direction:
// coordinator→worker rebroadcasts the cluster-wide floor, and
// worker→coordinator uplinks a floor certified by a local reducer.
// Raises are monotone and idempotent, so duplicates and reorderings are
// harmless by construction.
type FloorFrame struct {
	QueryID uint64
	Floor   float64
}

func (*FloorFrame) kind() uint64 { return kindFloor }

func (f *FloorFrame) appendBody(dst []byte) ([]byte, error) {
	dst = interval.AppendU64(dst, f.QueryID)
	dst = appendF64(dst, f.Floor)
	return dst, nil
}

func decodeFloor(r *interval.BinaryReader) (*FloorFrame, error) {
	f := &FloorFrame{QueryID: r.U64(), Floor: readF64(r)}
	if err := r.Err(); err != nil {
		return nil, errf("reading floor frame: %v", err)
	}
	return f, nil
}

// --- ResultFrame ----------------------------------------------------

// ReducerResult is one reducer's gathered output: its local top-k list
// and local statistics.
type ReducerResult struct {
	Reducer int
	Stats   join.LocalStats
	Results []join.Result
}

// ResultFrame gathers one shard's completed query: every reducer task's
// output, plus the epoch the worker actually served — the coordinator
// cross-checks it against the scatter epoch.
type ResultFrame struct {
	QueryID  uint64
	Epoch    int64
	Reducers []ReducerResult
}

func (*ResultFrame) kind() uint64 { return kindResult }

func (f *ResultFrame) appendBody(dst []byte) ([]byte, error) {
	dst = interval.AppendU64(dst, f.QueryID)
	dst = interval.AppendI64(dst, f.Epoch)
	dst = interval.AppendU64(dst, uint64(len(f.Reducers)))
	for _, rr := range f.Reducers {
		dst = interval.AppendI64(dst, int64(rr.Reducer))
		dst = appendLocalStats(dst, rr.Stats)
		dst = interval.AppendU64(dst, uint64(len(rr.Results)))
		for _, res := range rr.Results {
			dst = interval.AppendU64(dst, uint64(len(res.Tuple)))
			dst = interval.AppendIntervals(dst, res.Tuple)
			dst = appendF64(dst, res.Score)
		}
	}
	return dst, nil
}

func decodeResult(r *interval.BinaryReader) (*ResultFrame, error) {
	f := &ResultFrame{QueryID: r.U64(), Epoch: r.I64()}
	n := r.U64()
	if err := r.Err(); err != nil {
		return nil, errf("reading result header: %v", err)
	}
	if n > uint64(r.Len()/128) {
		return nil, errf("result declares %d reducers, payload holds at most %d", n, r.Len()/128)
	}
	f.Reducers = make([]ReducerResult, n)
	for i := range f.Reducers {
		rj := r.I64()
		if err := r.Err(); err != nil {
			return nil, errf("reading reducer result %d: %v", i, err)
		}
		if rj < 0 {
			return nil, errf("reducer result %d names reducer %d", i, rj)
		}
		st, err := readLocalStats(r)
		if err != nil {
			return nil, err
		}
		nRes := r.U64()
		if err := r.Err(); err != nil {
			return nil, errf("reading reducer %d result count: %v", rj, err)
		}
		if nRes > uint64(r.Len()/32) {
			return nil, errf("reducer %d declares %d results, payload holds at most %d", rj, nRes, r.Len()/32)
		}
		results := make([]join.Result, nRes)
		for j := range results {
			tupleLen := r.U64()
			if err := r.Err(); err != nil {
				return nil, errf("reading reducer %d result %d: %v", rj, j, err)
			}
			if tupleLen > uint64(r.Len()/interval.BinaryIntervalSize) {
				return nil, errf("result tuple declares %d intervals, payload holds at most %d",
					tupleLen, r.Len()/interval.BinaryIntervalSize)
			}
			b := r.Bytes(int(tupleLen) * interval.BinaryIntervalSize)
			if err := r.Err(); err != nil {
				return nil, errf("reading reducer %d result %d tuple: %v", rj, j, err)
			}
			tuple, err := interval.DecodeIntervals(b)
			if err != nil {
				return nil, errf("reducer %d result %d tuple: %v", rj, j, err)
			}
			results[j] = join.Result{Tuple: tuple, Score: readF64(r)}
		}
		if err := r.Err(); err != nil {
			return nil, errf("reading reducer %d results: %v", rj, err)
		}
		f.Reducers[i] = ReducerResult{Reducer: int(rj), Stats: st, Results: results}
	}
	return f, nil
}

func appendLocalStats(dst []byte, s join.LocalStats) []byte {
	dst = interval.AppendI64(dst, int64(s.Reducer))
	dst = interval.AppendI64(dst, int64(s.CombosAssigned))
	dst = interval.AppendI64(dst, int64(s.CombosProcessed))
	dst = interval.AppendI64(dst, int64(s.CombosSkipped))
	dst = interval.AppendI64(dst, s.TuplesExamined)
	dst = interval.AppendI64(dst, s.PartialsPruned)
	dst = interval.AppendI64(dst, int64(s.ResultsReturned))
	dst = interval.AppendI64(dst, int64(s.ProbeRounds))
	dst = appendF64(dst, s.FloorUsed)
	dst = appendF64(dst, s.MinScore)
	dst = interval.AppendI64(dst, int64(s.BucketRefsRouted))
	dst = appendF64(dst, s.RoutedIntervals)
	dst = appendF64(dst, s.SharedFloorFinal)
	dst = interval.AppendI64(dst, int64(s.Duration))
	return dst
}

func readLocalStats(r *interval.BinaryReader) (join.LocalStats, error) {
	s := join.LocalStats{
		Reducer:         int(r.I64()),
		CombosAssigned:  int(r.I64()),
		CombosProcessed: int(r.I64()),
		CombosSkipped:   int(r.I64()),
		TuplesExamined:  r.I64(),
		PartialsPruned:  r.I64(),
		ResultsReturned: int(r.I64()),
		ProbeRounds:     int(r.I64()),
		FloorUsed:       readF64(r),
		MinScore:        readF64(r),
	}
	s.BucketRefsRouted = int(r.I64())
	s.RoutedIntervals = readF64(r)
	s.SharedFloorFinal = readF64(r)
	s.Duration = time.Duration(r.I64())
	if err := r.Err(); err != nil {
		return join.LocalStats{}, errf("reading reducer stats: %v", err)
	}
	return s, nil
}

// --- ErrorFrame -----------------------------------------------------

// ErrorFrame reports a worker-side failure for one query (or, with
// QueryID 0, a load/append the worker could not apply). The coordinator
// maps Code onto the sentinel error taxonomy.
type ErrorFrame struct {
	QueryID uint64
	Code    uint64
	Msg     string
}

func (*ErrorFrame) kind() uint64 { return kindError }

func (f *ErrorFrame) appendBody(dst []byte) ([]byte, error) {
	dst = interval.AppendU64(dst, f.QueryID)
	dst = interval.AppendU64(dst, f.Code)
	dst = appendString(dst, f.Msg)
	return dst, nil
}

func decodeError(r *interval.BinaryReader) (*ErrorFrame, error) {
	f := &ErrorFrame{QueryID: r.U64(), Code: r.U64()}
	if err := r.Err(); err != nil {
		return nil, errf("reading error frame: %v", err)
	}
	if f.Code > CodeLoad {
		return nil, errf("unknown worker error code %d", f.Code)
	}
	msg, err := readString(r, "error message")
	if err != nil {
		return nil, err
	}
	f.Msg = msg
	return f, nil
}
