package shard

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"tkij/internal/interval"
	"tkij/internal/join"
	"tkij/internal/rtree"
	"tkij/internal/store"
	"tkij/internal/topbuckets"
)

// Worker is one shard: a replica store holding its owned slice of the
// bucket partition, serving reducer tasks scattered by a coordinator.
// Workers are deliberately context-free — a worker's lifetime is its
// connection's: Serve runs until the link closes or turns hostile, and
// query aborts arrive as the link dying, not as context cancellation.
//
// Pin discipline: a query's view is pinned synchronously in the read
// loop (frames on one link are ordered, so the pin happens before any
// later append can advance the replica) and released on every exit path
// of the executor — success, reducer failure, or a dead link. A worker
// holds zero live views whenever it has no in-flight queries.
type Worker struct {
	mu     sync.Mutex
	st     *store.Store
	active map[uint64]*workerQuery
	// maxSeen is the highest query id ever admitted. Floors for ids at
	// or below it target completed (or in-flight) queries and are
	// ignored when inactive; a floor above it names a query this worker
	// never admitted — a replayed or fabricated broadcast.
	maxSeen uint64
	// inflight counts running query executors; idle (condition on mu)
	// signals it reaching zero. A plain WaitGroup would race its Add
	// against a concurrent Quiesce when the counter passes through zero.
	inflight int
	idle     sync.Cond
}

// workerQuery is one in-flight query's floor state.
type workerQuery struct {
	// floor is the query's worker-local shared floor, seeded from the
	// scatter frame and raised by local reducers and coordinator
	// rebroadcasts; nil when pruning is disabled.
	floor *join.SharedFloor
	mu    sync.Mutex
	// advertised is the highest floor value the coordinator is known to
	// have (either it sent it, or we uplinked it) — the uplink guard
	// that keeps a rebroadcast from echoing forever between the two
	// sides.
	advertised float64
}

// NewWorker returns an empty worker awaiting its Load frame.
func NewWorker() *Worker {
	w := &Worker{active: make(map[uint64]*workerQuery)}
	w.idle.L = &w.mu
	return w
}

// Store exposes the replica store (nil before the Load frame) — used by
// tests to assert pin-release and epoch invariants.
func (w *Worker) Store() *store.Store {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.st
}

// Quiesce blocks until every in-flight query executor has exited.
func (w *Worker) Quiesce() {
	w.mu.Lock()
	for w.inflight > 0 {
		w.idle.Wait()
	}
	w.mu.Unlock()
}

// frameWriter serializes frame writes from the read loop, query
// executors, and floor uplinks onto one connection.
type frameWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (fw *frameWriter) send(f Frame) error {
	b, err := EncodeFrame(f)
	if err != nil {
		return err
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	_, err = fw.w.Write(b)
	return err
}

// Serve runs the worker's frame loop on conn until the link closes (nil
// on a clean close between frames) or a fatal frame arrives. Fatal
// failures send a best-effort error frame before the link drops.
func (w *Worker) Serve(conn io.ReadWriteCloser) error {
	defer conn.Close()
	fw := &frameWriter{w: conn}
	br := bufio.NewReaderSize(conn, 1<<16)
	for {
		f, err := ReadFrame(br)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		switch f := f.(type) {
		case *LoadFrame:
			err = w.handleLoad(f, fw)
		case *AppendFrame:
			err = w.handleAppend(f, fw)
		case *QueryFrame:
			err = w.handleQuery(f, fw)
		case *FloorFrame:
			err = w.handleFloor(f, fw)
		default:
			err = errf("worker cannot handle frame kind %d", f.kind())
		}
		if err != nil {
			return err
		}
	}
}

func (w *Worker) handleLoad(f *LoadFrame, fw *frameWriter) error {
	w.mu.Lock()
	loaded := w.st != nil
	w.mu.Unlock()
	if loaded {
		err := fmt.Errorf("%w: shard %d loaded twice", ErrRemote, f.ShardID)
		_ = fw.send(&ErrorFrame{Code: CodeLoad, Msg: err.Error()})
		return err
	}
	st, err := store.BuildBuckets(f.Cols)
	if err != nil {
		err = fmt.Errorf("%w: shard %d load: %v", ErrRemote, f.ShardID, err)
		_ = fw.send(&ErrorFrame{Code: CodeLoad, Msg: err.Error()})
		return err
	}
	w.mu.Lock()
	w.st = st
	w.mu.Unlock()
	return nil
}

func (w *Worker) handleAppend(f *AppendFrame, fw *frameWriter) error {
	w.mu.Lock()
	st := w.st
	w.mu.Unlock()
	if st == nil {
		err := fmt.Errorf("%w: append before load", ErrRemote)
		_ = fw.send(&ErrorFrame{Code: CodeLoad, Msg: err.Error()})
		return err
	}
	if f.Col >= st.NumCols() {
		err := fmt.Errorf("%w: append names collection %d of %d", ErrRemote, f.Col, st.NumCols())
		_ = fw.send(&ErrorFrame{Code: CodeLoad, Msg: err.Error()})
		return err
	}
	epoch, err := st.AppendEpoch(f.Col, f.Items)
	if err != nil {
		err = fmt.Errorf("%w: append: %v", ErrRemote, err)
		_ = fw.send(&ErrorFrame{Code: CodeLoad, Msg: err.Error()})
		return err
	}
	if epoch != f.Epoch {
		err = fmt.Errorf("%w: replica landed on epoch %d, append expected %d", ErrEpochMismatch, epoch, f.Epoch)
		_ = fw.send(&ErrorFrame{Code: CodeEpoch, Msg: err.Error()})
		return err
	}
	return nil
}

func (w *Worker) handleQuery(f *QueryFrame, fw *frameWriter) error {
	w.mu.Lock()
	st := w.st
	w.mu.Unlock()
	if st == nil {
		err := fmt.Errorf("%w: query before load", ErrRemote)
		_ = fw.send(&ErrorFrame{QueryID: f.QueryID, Code: CodeExec, Msg: err.Error()})
		return err
	}
	q := f.Query
	if len(f.Mapping) != q.NumVertices || len(f.Grids) != q.NumVertices {
		err := fmt.Errorf("%w: query %s has %d vertices but %d mappings / %d grids",
			ErrRemote, q.Name, q.NumVertices, len(f.Mapping), len(f.Grids))
		_ = fw.send(&ErrorFrame{QueryID: f.QueryID, Code: CodeExec, Msg: err.Error()})
		return err
	}
	for v, col := range f.Mapping {
		if col >= st.NumCols() {
			err := fmt.Errorf("%w: vertex %d maps to collection %d of %d", ErrRemote, v, col, st.NumCols())
			_ = fw.send(&ErrorFrame{QueryID: f.QueryID, Code: CodeExec, Msg: err.Error()})
			return err
		}
	}

	// Pin here, in the read loop: frames on one link are ordered, so no
	// append processed after this point can change what the query sees.
	view := st.View()
	if view.Epoch() != f.Epoch {
		view.Release()
		// Not fatal for the link: the coordinator decides what a
		// diverged replica means for the query.
		return fw.send(&ErrorFrame{
			QueryID: f.QueryID, Code: CodeEpoch,
			Msg: fmt.Sprintf("replica at epoch %d, query expects %d", view.Epoch(), f.Epoch),
		})
	}

	wq := &workerQuery{}
	if !f.DisablePruning {
		wq.floor = join.NewSharedFloor(f.Floor)
		wq.advertised = f.Floor
	}
	w.mu.Lock()
	if w.active[f.QueryID] != nil {
		w.mu.Unlock()
		view.Release()
		err := fmt.Errorf("%w: query %d scattered twice", ErrRemote, f.QueryID)
		_ = fw.send(&ErrorFrame{QueryID: f.QueryID, Code: CodeExec, Msg: err.Error()})
		return err
	}
	w.active[f.QueryID] = wq
	if f.QueryID > w.maxSeen {
		w.maxSeen = f.QueryID
	}
	w.inflight++
	w.mu.Unlock()

	go w.execute(f, wq, view, fw)
	return nil
}

func (w *Worker) handleFloor(f *FloorFrame, fw *frameWriter) error {
	w.mu.Lock()
	wq := w.active[f.QueryID]
	maxSeen := w.maxSeen
	w.mu.Unlock()
	if wq != nil {
		if wq.floor != nil {
			// Record the coordinator's knowledge before raising, so the
			// uplink never echoes this exact value back.
			wq.mu.Lock()
			if f.Floor > wq.advertised {
				wq.advertised = f.Floor
			}
			wq.mu.Unlock()
			wq.floor.Raise(f.Floor)
		}
		return nil
	}
	if f.QueryID <= maxSeen {
		// A floor racing the query's completion — expected, and a no-op.
		return nil
	}
	err := fmt.Errorf("%w: floor for query %d, which was never admitted (last admitted %d)",
		ErrFloorReplay, f.QueryID, maxSeen)
	_ = fw.send(&ErrorFrame{QueryID: f.QueryID, Code: CodeFloorReplay, Msg: err.Error()})
	return err
}

// execute runs one query's reducer tasks and writes the result (or
// error) frame. It owns the view and releases it on every path.
func (w *Worker) execute(f *QueryFrame, wq *workerQuery, view *store.View, fw *frameWriter) {
	// Declared first so it runs last: by the time Quiesce unblocks, the
	// view is already released and the query deregistered.
	defer func() {
		w.mu.Lock()
		w.inflight--
		if w.inflight == 0 {
			w.idle.Broadcast()
		}
		w.mu.Unlock()
	}()
	defer view.Release()
	defer func() {
		w.mu.Lock()
		delete(w.active, f.QueryID)
		w.mu.Unlock()
	}()

	// Floor uplink: mirror local raises to the coordinator, once each.
	if wq.floor != nil && !f.NoFloorUplink {
		sub := wq.floor.Subscribe()
		done := make(chan struct{})
		var upWG sync.WaitGroup
		upWG.Add(1)
		go func() {
			defer upWG.Done()
			for {
				v := wq.floor.Load()
				wq.mu.Lock()
				send := v > wq.advertised
				if send {
					wq.advertised = v
				}
				wq.mu.Unlock()
				if send {
					if fw.send(&FloorFrame{QueryID: f.QueryID, Floor: v}) != nil {
						return
					}
				}
				select {
				case <-done:
					return
				case <-sub:
				}
			}
		}()
		defer func() {
			close(done)
			upWG.Wait()
			wq.floor.Unsubscribe(sub)
		}()
	}

	reducers, err := w.runTasks(f, wq, view)
	if err != nil {
		_ = fw.send(&ErrorFrame{QueryID: f.QueryID, Code: CodeExec, Msg: err.Error()})
		return
	}
	_ = fw.send(&ResultFrame{QueryID: f.QueryID, Epoch: f.Epoch, Reducers: reducers})
}

func (w *Worker) runTasks(f *QueryFrame, wq *workerQuery, view *store.View) ([]ReducerResult, error) {
	q := f.Query

	// Foreign buckets shipped with the query, collection-scoped. They
	// are disjoint from the shard's resident buckets by construction,
	// but shadow them regardless — the shipped payload is what the
	// coordinator certified for this epoch.
	shipped := make(map[int]map[[2]int]*shippedBucket)
	for i := range f.Shipped {
		sb := &f.Shipped[i]
		m := shipped[sb.Col]
		if m == nil {
			m = make(map[[2]int]*shippedBucket)
			shipped[sb.Col] = m
		}
		m[[2]int{sb.StartG, sb.EndG}] = &shippedBucket{items: sb.Items}
	}
	srcs := make([]join.Source, q.NumVertices)
	for v := range srcs {
		col := f.Mapping[v]
		cv := view.Col(col)
		if m := shipped[col]; m != nil {
			srcs[v] = &overlaySource{res: cv, extra: m}
		} else {
			srcs[v] = cv
		}
	}

	// Every non-empty combo bucket must resolve — resident or shipped.
	// A silent miss here would compute a confidently wrong top-k, so it
	// is checked up front.
	for _, t := range f.Tasks {
		for _, ci := range t.Combos {
			for _, b := range f.Combos[ci].Buckets {
				if b.Col < 0 || b.Col >= len(srcs) {
					return nil, fmt.Errorf("combo bucket %v names vertex %d of %d", b, b.Col, len(srcs))
				}
				if b.Count > 0 && len(srcs[b.Col].BucketItems(b.StartG, b.EndG)) == 0 {
					return nil, fmt.Errorf("combo bucket %v neither resident nor shipped", b)
				}
			}
		}
	}

	opts := join.LocalOptions{
		DisableIndex:   f.DisableIndex,
		DisablePruning: f.DisablePruning,
		Floor:          f.Floor,
	}
	reducers := make([]ReducerResult, len(f.Tasks))
	errs := make([]error, len(f.Tasks))
	var tg sync.WaitGroup
	for i := range f.Tasks {
		tg.Add(1)
		go func(i int) {
			defer tg.Done()
			t := f.Tasks[i]
			combos := make([]topbuckets.Combo, len(t.Combos))
			for j, ci := range t.Combos {
				combos[j] = f.Combos[ci]
			}
			results, st, err := join.RunReducer(q, f.K, combos, srcs, f.Grids, opts, wq.floor)
			if err != nil {
				errs[i] = err
				return
			}
			st.Reducer = t.Reducer
			reducers[i] = ReducerResult{Reducer: t.Reducer, Stats: st, Results: results}
		}(i)
	}
	tg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(reducers, func(i, j int) bool { return reducers[i].Reducer < reducers[j].Reducer })
	return reducers, nil
}

// shippedBucket is one foreign bucket's payload with a lazily memoized
// R-tree (shared safely across the worker's parallel reducer tasks).
type shippedBucket struct {
	items []interval.Interval
	once  sync.Once
	tree  *rtree.Tree
}

// overlaySource layers shipped foreign buckets over the shard's
// resident (pinned) partition for one collection.
type overlaySource struct {
	res   *store.ColView
	extra map[[2]int]*shippedBucket
}

func (o *overlaySource) BucketItems(startG, endG int) []interval.Interval {
	if b := o.extra[[2]int{startG, endG}]; b != nil {
		return b.items
	}
	return o.res.BucketItems(startG, endG)
}

func (o *overlaySource) SearchBucket(startG, endG int, box rtree.Rect, fn func(ref int32) bool) {
	if b := o.extra[[2]int{startG, endG}]; b != nil {
		b.once.Do(func() { b.tree = store.TreeOf(b.items) })
		b.tree.Search(box, func(p rtree.Point) bool { return fn(p.Ref) })
		return
	}
	o.res.SearchBucket(startG, endG, box, fn)
}
