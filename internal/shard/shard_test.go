package shard

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"

	"tkij/internal/distribute"
	"tkij/internal/interval"
	"tkij/internal/join"
	"tkij/internal/mapreduce"
	"tkij/internal/query"
	"tkij/internal/scoring"
	"tkij/internal/stats"
	"tkij/internal/store"
	"tkij/internal/topbuckets"
)

func synthCols(n, perCol int, seed int64) []*interval.Collection {
	rng := rand.New(rand.NewSource(seed))
	cols := make([]*interval.Collection, n)
	for i := range cols {
		c := &interval.Collection{Name: "C"}
		for j := 0; j < perCol; j++ {
			s := rng.Int63n(2000)
			c.Add(interval.Interval{ID: int64(i*1000000 + j), Start: s, End: s + 1 + rng.Int63n(80)})
		}
		cols[i] = c
	}
	return cols
}

// pipelineEnv is everything up to the join phase: the store, per-vertex
// sources/grids, selected combinations and the DTB assignment.
type pipelineEnv struct {
	q      *query.Query
	st     *store.Store
	srcs   []join.Source
	grans  []stats.Grid
	combos []topbuckets.Combo
	assign *distribute.Assignment
	k      int
}

func buildPipeline(t *testing.T, q *query.Query, cols []*interval.Collection, g, k, reducers int) *pipelineEnv {
	t.Helper()
	ms, _, err := stats.Collect(cols, g, mapreduce.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := topbuckets.Run(q, ms, k, topbuckets.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assign, err := distribute.Assign(distribute.AlgDTB, tb.Selected, reducers)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Build(cols, ms)
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]join.Source, len(cols))
	grans := make([]stats.Grid, len(cols))
	for v := range cols {
		srcs[v] = st.Col(v)
		grans[v] = ms[v].Grid()
	}
	return &pipelineEnv{q: q, st: st, srcs: srcs, grans: grans,
		combos: tb.Selected, assign: assign, k: k}
}

func (env *pipelineEnv) run(t *testing.T, runner join.Runner, opts join.LocalOptions) *join.Output {
	t.Helper()
	out, err := join.RunWith(context.Background(), env.q, env.srcs, env.grans,
		env.combos, env.assign, env.k, mapreduce.Config{Mappers: 3}, opts, nil, runner)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// request builds the ReduceRequest RunWith would issue — used by fault
// tests that call Cluster.RunReducers directly.
func (env *pipelineEnv) request(opts join.LocalOptions) *join.ReduceRequest {
	var shared *join.SharedFloor
	if !opts.DisablePruning {
		shared = join.NewSharedFloor(opts.Floor)
	}
	return &join.ReduceRequest{
		Query: env.q, Srcs: env.srcs, Grans: env.grans, Combos: env.combos,
		Assign: env.assign, K: env.k, Config: mapreduce.Config{}, Opts: opts, Shared: shared,
	}
}

func testQuery() *query.Query {
	env := query.Env{Params: scoring.P1, Avg: 40}
	return query.Qbb(env)
}

// quiesce waits for every worker's in-flight executors, then asserts
// zero live views — the pin-release invariant for remote execution.
func assertNoLiveViews(t *testing.T, workers []*Worker) {
	t.Helper()
	for i, w := range workers {
		w.Quiesce()
		if st := w.Store(); st != nil {
			if vs := st.ViewStats(); vs.Live != 0 {
				t.Fatalf("worker %d holds %d live views after quiesce", i, vs.Live)
			}
		}
	}
}

// Distributed execution over N real (in-process, full wire protocol)
// workers must return results identical to the local runner — same
// scores, same tuples, same order — for every shard count, with and
// without floor broadcast.
func TestClusterEquivalence(t *testing.T) {
	q := testQuery()
	for seed := int64(1); seed <= 2; seed++ {
		cols := synthCols(3, 120, seed)
		env := buildPipeline(t, q, cols, 6, 10, 4)
		local := env.run(t, nil, join.LocalOptions{})
		for _, n := range []int{1, 2, 3, 5} {
			for _, noFloor := range []bool{false, true} {
				c, workers, err := InProcess(n, ClusterOptions{NoFloorBroadcast: noFloor})
				if err != nil {
					t.Fatal(err)
				}
				if err := c.LoadStore(env.st); err != nil {
					t.Fatal(err)
				}
				remote := env.run(t, c, join.LocalOptions{})
				if !reflect.DeepEqual(remote.Results, local.Results) {
					t.Fatalf("seed %d, %d shards (noFloor=%v): remote results differ from local\nremote: %v\nlocal:  %v",
						seed, n, noFloor, remote.Results, local.Results)
				}
				if n > 1 && remote.ShippedBuckets == 0 && len(env.assign.BucketReducers) > 1 {
					// With round-robin reducers over a partitioned store,
					// some bucket is essentially always foreign.
					t.Logf("seed %d, %d shards: nothing shipped (unusual but not wrong)", seed, n)
				}
				assertNoLiveViews(t, workers)
				c.Close()
			}
		}
	}
}

// Appends must keep replicas in lockstep: after coordinator and cluster
// both apply a batch, a re-planned query over the grown store matches
// local execution, and the worker epochs equal the coordinator delta.
func TestClusterAppendLockstep(t *testing.T) {
	q := testQuery()
	cols := synthCols(3, 100, 3)
	env := buildPipeline(t, q, cols, 6, 8, 4)
	c, workers, err := InProcess(3, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadStore(env.st); err != nil {
		t.Fatal(err)
	}
	base := env.st.Epoch()

	// Two interleaved append epochs, queried after each.
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 2; round++ {
		var batch []interval.Interval
		for j := 0; j < 40; j++ {
			s := rng.Int63n(2000)
			batch = append(batch, interval.Interval{ID: int64(10000 + round*1000 + j), Start: s, End: s + 1 + rng.Int63n(80)})
		}
		if _, err := env.st.Append(0, batch); err != nil {
			t.Fatal(err)
		}
		if err := c.Append(0, batch); err != nil {
			t.Fatal(err)
		}
		for _, iv := range batch {
			cols[0].Add(iv)
		}
		// Re-plan against the grown dataset (fresh matrices → fresh
		// combos/assignment), reusing the same resident store.
		grown := buildPipelineFromStore(t, q, cols, env.st, 6, 8, 4)
		local := grown.run(t, nil, join.LocalOptions{})
		remote := grown.run(t, c, join.LocalOptions{})
		if !reflect.DeepEqual(remote.Results, local.Results) {
			t.Fatalf("round %d: remote results differ from local", round)
		}
		for i, w := range workers {
			w.Quiesce()
			if got, want := w.Store().Epoch(), env.st.Epoch()-base; got != want {
				t.Fatalf("round %d: worker %d at epoch %d, want %d", round, i, got, want)
			}
		}
	}
	assertNoLiveViews(t, workers)
}

// buildPipelineFromStore re-plans over fresh statistics but keeps the
// existing (already loaded and appended) store.
func buildPipelineFromStore(t *testing.T, q *query.Query, cols []*interval.Collection,
	st *store.Store, g, k, reducers int) *pipelineEnv {
	t.Helper()
	ms, _, err := stats.Collect(cols, g, mapreduce.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := topbuckets.Run(q, ms, k, topbuckets.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assign, err := distribute.Assign(distribute.AlgDTB, tb.Selected, reducers)
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]join.Source, len(cols))
	grans := make([]stats.Grid, len(cols))
	for v := range cols {
		srcs[v] = st.Col(v)
		grans[v] = ms[v].Grid()
	}
	return &pipelineEnv{q: q, st: st, srcs: srcs, grans: grans,
		combos: tb.Selected, assign: assign, k: k}
}

// The full protocol over real TCP loopback: Dial against listener-backed
// workers, same results as local.
func TestClusterTCP(t *testing.T) {
	q := testQuery()
	cols := synthCols(3, 80, 5)
	env := buildPipeline(t, q, cols, 5, 6, 4)
	local := env.run(t, nil, join.LocalOptions{})

	const n = 2
	addrs := make([]string, n)
	workers := make([]*Worker, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		addrs[i] = ln.Addr().String()
		w := NewWorker()
		workers[i] = w
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			_ = w.Serve(conn)
		}()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := Dial(ctx, addrs, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadStore(env.st); err != nil {
		t.Fatal(err)
	}
	remote := env.run(t, c, join.LocalOptions{})
	if !reflect.DeepEqual(remote.Results, local.Results) {
		t.Fatalf("TCP results differ from local")
	}
	assertNoLiveViews(t, workers)
}

// --- fault injection ------------------------------------------------

// fakeWorker drives the worker side of a link from the test: handle is
// called with every decoded frame and may write responses or close the
// connection. Reading continues until the conn dies.
func fakeWorker(conn io.ReadWriteCloser, handle func(Frame, *frameWriter) bool) {
	fw := &frameWriter{w: conn}
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			_ = conn.Close()
			return
		}
		if !handle(f, fw) {
			_ = conn.Close()
			return
		}
	}
}

// faultCluster builds a 2-link cluster: link 0 is a healthy real
// worker, link 1 is script-driven by the test.
func faultCluster(t *testing.T, opts ClusterOptions, handle func(Frame, *frameWriter) bool) (*Cluster, *Worker) {
	t.Helper()
	realEnd, coordEnd0 := net.Pipe()
	w := NewWorker()
	go func() { _ = w.Serve(realEnd) }()
	fakeEnd, coordEnd1 := net.Pipe()
	go fakeWorker(fakeEnd, handle)
	return NewCluster([]io.ReadWriteCloser{coordEnd0, coordEnd1}, opts), w
}

// A worker crashing mid-scatter (link closes after it receives the
// query) fails the query with ErrWorkerLost and no partial results;
// the surviving worker's pins are all released.
func TestFaultWorkerCrash(t *testing.T) {
	env := buildPipeline(t, testQuery(), synthCols(3, 80, 7), 5, 6, 4)
	c, w := faultCluster(t, ClusterOptions{}, func(f Frame, fw *frameWriter) bool {
		_, isQuery := f.(*QueryFrame)
		return !isQuery // die on the scatter frame
	})
	defer c.Close()
	if err := c.LoadStore(env.st); err != nil {
		t.Fatal(err)
	}
	out, err := c.RunReducers(context.Background(), env.request(join.LocalOptions{}))
	if out != nil || !errors.Is(err, ErrWorkerLost) {
		t.Fatalf("RunReducers = (%v, %v), want (nil, ErrWorkerLost)", out, err)
	}
	assertNoLiveViews(t, []*Worker{w})
}

// A hung worker (accepts the query, never answers) is bounded by the
// caller's deadline; the error wraps the context error so the engine
// translates it to ErrCanceled.
func TestFaultWorkerHang(t *testing.T) {
	env := buildPipeline(t, testQuery(), synthCols(3, 80, 8), 5, 6, 4)
	c, w := faultCluster(t, ClusterOptions{}, func(Frame, *frameWriter) bool {
		return true // swallow everything, answer nothing
	})
	defer c.Close()
	if err := c.LoadStore(env.st); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	out, err := c.RunReducers(ctx, env.request(join.LocalOptions{}))
	if out != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunReducers = (%v, %v), want deadline exceeded", out, err)
	}
	assertNoLiveViews(t, []*Worker{w})
}

// A torn frame (garbage bytes, then the link dies) is a protocol
// violation, not a lost worker.
func TestFaultTornFrame(t *testing.T) {
	env := buildPipeline(t, testQuery(), synthCols(3, 80, 9), 5, 6, 4)
	c, w := faultCluster(t, ClusterOptions{}, func(f Frame, fw *frameWriter) bool {
		if _, isQuery := f.(*QueryFrame); isQuery {
			// A plausible length prefix followed by a truncated payload.
			hdr := interval.AppendU64(nil, 64)
			hdr = interval.AppendU64(hdr, kindResult)
			fw.mu.Lock()
			_, _ = fw.w.Write(hdr)
			fw.mu.Unlock()
			return false // close mid-frame
		}
		return true
	})
	defer c.Close()
	if err := c.LoadStore(env.st); err != nil {
		t.Fatal(err)
	}
	out, err := c.RunReducers(context.Background(), env.request(join.LocalOptions{}))
	if out != nil || !errors.Is(err, ErrProtocol) {
		t.Fatalf("RunReducers = (%v, %v), want (nil, ErrProtocol)", out, err)
	}
	assertNoLiveViews(t, []*Worker{w})
}

// A floor broadcast for a query the worker never admitted is a replay:
// the worker rejects it with a distinct error and the in-flight query
// fails with ErrFloorReplay.
func TestFaultFloorReplay(t *testing.T) {
	env := buildPipeline(t, testQuery(), synthCols(3, 80, 10), 5, 6, 4)
	c, w := faultCluster(t, ClusterOptions{}, func(f Frame, fw *frameWriter) bool {
		if _, isQuery := f.(*QueryFrame); isQuery {
			// Claim a floor for a query id that was never scattered.
			_ = fw.send(&ErrorFrame{QueryID: 1 << 40, Code: CodeFloorReplay,
				Msg: "floor for query 1099511627776, which was never admitted"})
		}
		return true
	})
	defer c.Close()
	if err := c.LoadStore(env.st); err != nil {
		t.Fatal(err)
	}
	out, err := c.RunReducers(context.Background(), env.request(join.LocalOptions{}))
	if out != nil || !errors.Is(err, ErrFloorReplay) {
		t.Fatalf("RunReducers = (%v, %v), want (nil, ErrFloorReplay)", out, err)
	}
	assertNoLiveViews(t, []*Worker{w})
}

// The worker side of the replay check: a real worker receiving a floor
// for an unknown query id answers CodeFloorReplay and kills the link.
func TestWorkerRejectsFloorReplay(t *testing.T) {
	workerEnd, testEnd := net.Pipe()
	w := NewWorker()
	served := make(chan error, 1)
	go func() { served <- w.Serve(workerEnd) }()

	send := func(f Frame) {
		b, err := EncodeFrame(f)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := testEnd.Write(b); err != nil {
			t.Error(err)
		}
	}
	gran, _ := stats.NewGranulation(0, 100, 4)
	send(&LoadFrame{ShardID: 0, Shards: 1, Cols: []store.PartitionCol{{Col: 0, Gran: gran}}})
	send(&FloorFrame{QueryID: 7, Floor: 0.5})

	f, err := ReadFrame(testEnd)
	if err != nil {
		t.Fatal(err)
	}
	ef, ok := f.(*ErrorFrame)
	if !ok || ef.Code != CodeFloorReplay || ef.QueryID != 7 {
		t.Fatalf("worker answered %#v, want CodeFloorReplay for query 7", f)
	}
	if err := <-served; !errors.Is(err, ErrFloorReplay) {
		t.Fatalf("Serve returned %v, want ErrFloorReplay", err)
	}
}

// A worker whose replica lands on the wrong epoch after an append
// reports CodeEpoch and the cluster poisons itself with
// ErrEpochMismatch.
func TestWorkerAppendEpochMismatch(t *testing.T) {
	workerEnd, testEnd := net.Pipe()
	w := NewWorker()
	served := make(chan error, 1)
	go func() { served <- w.Serve(workerEnd) }()

	send := func(f Frame) {
		b, err := EncodeFrame(f)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := testEnd.Write(b); err != nil {
			t.Error(err)
		}
	}
	gran, _ := stats.NewGranulation(0, 100, 4)
	send(&LoadFrame{ShardID: 0, Shards: 1, Cols: []store.PartitionCol{{Col: 0, Gran: gran}}})
	// Declare epoch 5; the replica will land on 1.
	send(&AppendFrame{Epoch: 5, Col: 0, Items: []interval.Interval{{ID: 1, Start: 3, End: 9}}})

	f, err := ReadFrame(testEnd)
	if err != nil {
		t.Fatal(err)
	}
	ef, ok := f.(*ErrorFrame)
	if !ok || ef.Code != CodeEpoch {
		t.Fatalf("worker answered %#v, want CodeEpoch", f)
	}
	if err := <-served; !errors.Is(err, ErrEpochMismatch) {
		t.Fatalf("Serve returned %v, want ErrEpochMismatch", err)
	}
}

// The manifest is deterministic and total: layout buckets round-robin,
// unknown buckets fall through to a stable hash, and both stay within
// range.
func TestManifestOwnership(t *testing.T) {
	layout := []stats.BucketKey{
		{Col: 0, StartG: 0, EndG: 0}, {Col: 0, StartG: 0, EndG: 1},
		{Col: 1, StartG: 1, EndG: 2}, {Col: 1, StartG: 2, EndG: 3},
		{Col: 1, StartG: 3, EndG: 3},
	}
	m := NewManifest(layout, 3)
	n2 := NewManifest(layout, 3)
	for i, k := range layout {
		if got, want := m.Owner(k), i%3; got != want {
			t.Fatalf("Owner(%v) = %d, want %d", k, got, want)
		}
		if m.Owner(k) != n2.Owner(k) {
			t.Fatalf("manifest not deterministic at %v", k)
		}
	}
	if m.Buckets(0) != 2 || m.Buckets(1) != 2 || m.Buckets(2) != 1 {
		t.Fatalf("bucket counts = %d/%d/%d", m.Buckets(0), m.Buckets(1), m.Buckets(2))
	}
	// Fallback: stable and in range.
	for col := 0; col < 5; col++ {
		for sg := 0; sg < 5; sg++ {
			k := stats.BucketKey{Col: col, StartG: sg, EndG: sg + 7}
			o := m.Owner(k)
			if o < 0 || o >= 3 {
				t.Fatalf("fallback owner %d out of range", o)
			}
			if o != n2.Owner(k) {
				t.Fatalf("fallback not deterministic at %v", k)
			}
		}
	}
}
