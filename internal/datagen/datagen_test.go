package datagen

import (
	"testing"

	"tkij/internal/interval"
)

func TestUniformParameters(t *testing.T) {
	c := Uniform("u", 20000, 1)
	if c.Len() != 20000 {
		t.Fatalf("Len = %d", c.Len())
	}
	s := c.ComputeStats()
	if s.MinStart < 0 || s.MaxEnd > UniformStartMax+UniformMaxLen {
		t.Errorf("span [%d,%d] outside generator bounds", s.MinStart, s.MaxEnd)
	}
	if s.MinLength < UniformMinLen || s.MaxLength > UniformMaxLen {
		t.Errorf("lengths [%d,%d] outside [1,100]", s.MinLength, s.MaxLength)
	}
	// Uniform lengths in [1,100] average ~50.5.
	if s.AvgLength < 45 || s.AvgLength > 56 {
		t.Errorf("AvgLength = %g, want ~50.5", s.AvgLength)
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := Uniform("a", 1000, 7)
	b := Uniform("b", 1000, 7)
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := Uniform("c", 1000, 8)
	same := true
	for i := range a.Items {
		if a.Items[i] != c.Items[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestTrafficDistributionShape(t *testing.T) {
	c := Traffic("t", 50000, 3, TrafficConfig{})
	s := c.ComputeStats()
	if s.MinLength < 1 {
		t.Errorf("MinLength = %d, want >= 1", s.MinLength)
	}
	// Heavy tail: average tens of seconds, max orders of magnitude above.
	if s.AvgLength < 20 || s.AvgLength > 200 {
		t.Errorf("AvgLength = %g, want within [20,200] (paper: 54)", s.AvgLength)
	}
	if float64(s.MaxLength) < 50*s.AvgLength {
		t.Errorf("MaxLength %d not heavy-tailed vs avg %g", s.MaxLength, s.AvgLength)
	}
	// Bursty starts: histogram bins must spread over >= 2 orders of
	// magnitude (Figure 12a's log-scale spread).
	starts := make([]int64, c.Len())
	for i, iv := range c.Items {
		starts[i] = iv.Start
	}
	h := Histogram(starts, 86400, 50)
	minNZ, maxNZ := 101.0, 0.0
	for _, v := range h {
		if v > 0 {
			if v < minNZ {
				minNZ = v
			}
			if v > maxNZ {
				maxNZ = v
			}
		}
	}
	if maxNZ/minNZ < 10 {
		t.Errorf("start-point histogram spread %g/%g = %gx, want >= 10x (bursty)", maxNZ, minNZ, maxNZ/minNZ)
	}
}

func TestBuildConnectionsGapRule(t *testing.T) {
	packets := []Packet{
		{Client: "a", Server: "x", TS: 100},
		{Client: "a", Server: "x", TS: 130},
		{Client: "a", Server: "x", TS: 150},
		{Client: "a", Server: "x", TS: 300}, // gap 150 > 60: new connection
		{Client: "a", Server: "x", TS: 320},
		{Client: "b", Server: "x", TS: 105}, // different flow
	}
	c := BuildConnections("conns", packets, 0)
	if c.Len() != 3 {
		t.Fatalf("built %d connections, want 3: %v", c.Len(), c.Items)
	}
	// Flow a/x first connection spans [100,150].
	found := false
	for _, iv := range c.Items {
		if iv.Start == 100 && iv.End == 150 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected connection [100,150], got %v", c.Items)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildConnectionsSinglePacket(t *testing.T) {
	c := BuildConnections("one", []Packet{{Client: "a", Server: "x", TS: 42}}, 0)
	if c.Len() != 1 || c.Items[0].Start != 42 || c.Items[0].End != 42 {
		t.Fatalf("single packet connection = %v", c.Items)
	}
}

func TestGenPacketsToConnections(t *testing.T) {
	packets := GenPackets(100, 40, 86400, 5)
	c := BuildConnections("conns", packets, 0)
	if c.Len() < 100 {
		t.Fatalf("built %d connections from 100 flows, want >= 100 (gaps split flows)", c.Len())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// No connection may contain an internal gap > 60s; spot-check
	// durations stay within the log span.
	s := c.ComputeStats()
	if s.MaxEnd-s.MinStart > 86400*3 {
		t.Errorf("connections span too wide: [%d,%d]", s.MinStart, s.MaxEnd)
	}
}

func TestHistogram(t *testing.T) {
	// Bins over [0,9] with width 5: {0,4} -> bin 0, {5,9,9} -> bin 1.
	h := Histogram([]int64{0, 4, 5, 9}, 9, 2)
	if h[0] != 50 || h[1] != 50 {
		t.Fatalf("Histogram = %v, want [50 50]", h)
	}
	if got := Histogram(nil, 10, 3); len(got) != 3 {
		t.Fatal("empty histogram wrong length")
	}
}

func TestTrafficDeterministic(t *testing.T) {
	a := Traffic("a", 500, 11, TrafficConfig{})
	b := Traffic("b", 500, 11, TrafficConfig{})
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			t.Fatal("same seed produced different traffic data")
		}
	}
	var _ interval.Timestamp // keep the import honest if assertions change
}
