// Package datagen produces the evaluation datasets.
//
// Uniform reproduces §4.2's synthetic generator: pseudo-random uniform
// start points in [0, 1e5] and lengths in [1, 100], integer endpoints —
// the same parameters as Chawda et al.
//
// Traffic simulates the paper's proprietary firewall-log dataset
// (§4.3.1): the real data is unavailable, so the simulator reproduces
// the two distributional properties the experiments depend on
// (Figure 12): bursty, non-uniform start points (hourly activity waves
// over a day) and heavy-tailed lengths (min 1s, average tens of
// seconds, maximum around a day — orders of magnitude above the
// average). Long intervals land in far-apart granule pairs, which is
// what changes TopBuckets' behaviour on real data (§4.3.2).
//
// The package also implements the paper's connection-building step:
// grouping a packet log by (client, server) and splitting on gaps
// longer than 60 seconds (§4.3.1).
package datagen

import (
	"math"
	"math/rand"
	"sort"

	"tkij/internal/interval"
)

// Synthetic-data parameters of §4.2.
const (
	// UniformStartMax is the start-point range upper bound s = [0, 1e5].
	UniformStartMax = 100000
	// UniformMinLen and UniformMaxLen bound lengths w = [1, 100].
	UniformMinLen = 1
	UniformMaxLen = 100
)

// Uniform generates n intervals with the paper's synthetic parameters.
func Uniform(name string, n int, seed int64) *interval.Collection {
	return UniformRange(name, n, seed, UniformStartMax, UniformMinLen, UniformMaxLen)
}

// UniformRange generates n intervals with uniform starts in
// [0, startMax] and uniform lengths in [minLen, maxLen].
func UniformRange(name string, n int, seed int64, startMax, minLen, maxLen int64) *interval.Collection {
	rng := rand.New(rand.NewSource(seed))
	c := &interval.Collection{Name: name, Items: make([]interval.Interval, 0, n)}
	for i := 0; i < n; i++ {
		s := rng.Int63n(startMax + 1)
		w := minLen + rng.Int63n(maxLen-minLen+1)
		c.Add(interval.Interval{ID: int64(i), Start: s, End: s + w})
	}
	return c
}

// TrafficConfig tunes the firewall-log simulator. The zero value is
// replaced by defaults matching §4.3.1's reported statistics.
type TrafficConfig struct {
	// Span is the covered time range in seconds (default: one day).
	Span int64
	// AvgLen is the target average connection length (default 54s,
	// the paper's reported average).
	AvgLen float64
	// MaxLen caps connection lengths (default 86400s, close to the
	// paper's 86,459s maximum).
	MaxLen int64
	// Bursts is the number of diurnal activity waves (default 8).
	Bursts int
}

func (c TrafficConfig) withDefaults() TrafficConfig {
	if c.Span <= 0 {
		c.Span = 86400
	}
	if c.AvgLen <= 0 {
		c.AvgLen = 54
	}
	if c.MaxLen <= 0 {
		c.MaxLen = 86400
	}
	if c.Bursts <= 0 {
		c.Bursts = 8
	}
	return c
}

// Traffic generates n connection-like intervals per TrafficConfig.
func Traffic(name string, n int, seed int64, cfg TrafficConfig) *interval.Collection {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	c := &interval.Collection{Name: name, Items: make([]interval.Interval, 0, n)}
	// Burst centers and weights: a few hours dominate, as in Figure 12a
	// where bin frequencies swing over two orders of magnitude.
	centers := make([]float64, cfg.Bursts)
	widths := make([]float64, cfg.Bursts)
	weights := make([]float64, cfg.Bursts)
	var wsum float64
	for b := range centers {
		centers[b] = rng.Float64() * float64(cfg.Span)
		widths[b] = (0.005 + 0.03*rng.Float64()) * float64(cfg.Span)
		weights[b] = math.Exp(rng.Float64() * 4) // ~1x..55x spread
		wsum += weights[b]
	}
	for i := 0; i < n; i++ {
		// 20% uniform background, 80% bursty.
		var s int64
		if rng.Float64() < 0.2 {
			s = rng.Int63n(cfg.Span)
		} else {
			b := pickWeighted(rng, weights, wsum)
			v := centers[b] + rng.NormFloat64()*widths[b]
			if v < 0 {
				v = -v
			}
			s = int64(v) % cfg.Span
		}
		c.Add(interval.Interval{ID: int64(i), Start: s, End: s + trafficLength(rng, cfg)})
	}
	return c
}

// trafficLength draws a heavy-tailed length: a bounded Pareto with tail
// index ~1.15 shifted to minimum 1, calibrated so the mean lands near
// AvgLen while the maximum reaches a large fraction of MaxLen on
// realistic sample sizes.
func trafficLength(rng *rand.Rand, cfg TrafficConfig) int64 {
	const alpha = 1.15
	// Mean of a Pareto(xm, alpha) is xm*alpha/(alpha-1) ≈ 7.7*xm; pick
	// xm so the (clipped) mean approximates AvgLen.
	xm := cfg.AvgLen * (alpha - 1) / alpha
	if xm < 1 {
		xm = 1
	}
	u := rng.Float64()
	if u == 0 {
		u = 1e-12
	}
	l := int64(xm / math.Pow(u, 1/alpha))
	if l < 1 {
		l = 1
	}
	if l > cfg.MaxLen {
		l = cfg.MaxLen
	}
	return l
}

func pickWeighted(rng *rand.Rand, weights []float64, sum float64) int {
	v := rng.Float64() * sum
	for i, w := range weights {
		v -= w
		if v <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Packet is one firewall-log record: a packet exchanged between a
// client and a server at a second-granularity timestamp (§4.3.1).
type Packet struct {
	Client, Server string
	TS             interval.Timestamp
}

// ConnectionGap is the paper's grouping rule: consecutive packets of the
// same (client, server) pair belong to one connection iff their
// timestamps are within 60 seconds.
const ConnectionGap = 60

// BuildConnections groups a packet log into connection intervals
// [client, server, start, end] per §4.3.1: packets are bucketed by
// (client, server), sorted by timestamp, and split whenever consecutive
// packets are more than gap seconds apart. gap <= 0 uses ConnectionGap.
func BuildConnections(name string, packets []Packet, gap int64) *interval.Collection {
	if gap <= 0 {
		gap = ConnectionGap
	}
	type flow struct{ client, server string }
	byFlow := make(map[flow][]interval.Timestamp)
	for _, p := range packets {
		f := flow{p.Client, p.Server}
		byFlow[f] = append(byFlow[f], p.TS)
	}
	// Deterministic flow order.
	flows := make([]flow, 0, len(byFlow))
	for f := range byFlow {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].client != flows[j].client {
			return flows[i].client < flows[j].client
		}
		return flows[i].server < flows[j].server
	})
	c := &interval.Collection{Name: name}
	id := int64(0)
	for _, f := range flows {
		ts := byFlow[f]
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		start, last := ts[0], ts[0]
		for _, t := range ts[1:] {
			if t-last > gap {
				c.Add(interval.Interval{ID: id, Start: start, End: last})
				id++
				start = t
			}
			last = t
		}
		c.Add(interval.Interval{ID: id, Start: start, End: last})
		id++
	}
	return c
}

// GenPackets simulates a firewall log: nFlows (client, server) pairs
// exchanging bursts of packets across span seconds. Useful as input to
// BuildConnections in examples and tests.
func GenPackets(nFlows, packetsPerFlow int, span int64, seed int64) []Packet {
	rng := rand.New(rand.NewSource(seed))
	var out []Packet
	for f := 0; f < nFlows; f++ {
		client := "c" + itoa(f%100)
		server := "s" + itoa(f)
		t := rng.Int63n(span)
		for p := 0; p < packetsPerFlow; p++ {
			out = append(out, Packet{Client: client, Server: server, TS: t})
			// Mostly dense packets, occasionally a gap that splits the
			// connection.
			if rng.Float64() < 0.05 {
				t += ConnectionGap + 1 + rng.Int63n(600)
			} else {
				t += rng.Int63n(30)
			}
		}
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// Histogram bins values into nBins equal-width buckets over [0, max] and
// returns per-bin percentages — the presentation of Figure 12.
func Histogram(values []int64, max int64, nBins int) []float64 {
	out := make([]float64, nBins)
	if len(values) == 0 || max <= 0 || nBins <= 0 {
		return out
	}
	for _, v := range values {
		b := int(float64(v) / float64(max+1) * float64(nBins))
		if b < 0 {
			b = 0
		}
		if b >= nBins {
			b = nBins - 1
		}
		out[b]++
	}
	for i := range out {
		out[i] = out[i] / float64(len(values)) * 100
	}
	return out
}
