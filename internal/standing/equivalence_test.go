package standing

// Randomized standing-equivalence harness (the gate of this layer):
// after every append, each subscriber's materialized state — initial
// snapshot plus every delta applied in order through TopK.Apply — must
// match a fresh execute at that epoch (byte-identical above the k-th
// score, score-identical throughout) and the naive nested-loop oracle.
// Multi-subscriber stages run the same shape at different k and an
// isomorphic relabeling sharing the canonical plan key, all pushed from
// the same ingest cycles.

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"tkij/internal/baselines"
	"tkij/internal/core"
	"tkij/internal/interval"
	"tkij/internal/join"
	"tkij/internal/query"
	"tkij/internal/scoring"
)

// randomStandingCollection mirrors the core harness's generator: sizes,
// spans and lengths drawn from the rng.
func randomStandingCollection(rng *rand.Rand, name string, idBase int64) *interval.Collection {
	n := 25 + rng.Intn(35)
	span := int64(500 + rng.Intn(4000))
	maxLen := int64(10 + rng.Intn(150))
	c := &interval.Collection{Name: name}
	for j := 0; j < n; j++ {
		s := rng.Int63n(span)
		c.Add(interval.Interval{ID: idBase + int64(j), Start: s, End: s + 1 + rng.Int63n(maxLen)})
	}
	return c
}

// randomChain builds a random chain query over n vertices; relabeled
// optionally applies the involution v -> n-1-v so the shape is
// isomorphic but not identical.
func randomChain(rng *rand.Rand, n int, avg float64, relabel bool) (*query.Query, []int, error) {
	params := []scoring.PairParams{scoring.P1, scoring.P2, scoring.P3}[rng.Intn(3)]
	preds := []func() *scoring.Predicate{
		func() *scoring.Predicate { return scoring.Before(params) },
		func() *scoring.Predicate { return scoring.Meets(params) },
		func() *scoring.Predicate { return scoring.Overlaps(params) },
		func() *scoring.Predicate { return scoring.Starts(params) },
		func() *scoring.Predicate { return scoring.FinishedBy(params) },
		func() *scoring.Predicate { return scoring.JustBefore(params, avg) },
	}
	phi := func(v int) int {
		if relabel {
			return n - 1 - v
		}
		return v
	}
	var edges []query.Edge
	for v := 1; v < n; v++ {
		from, to := v-1, v
		if rng.Intn(2) == 0 {
			from, to = to, from
		}
		edges = append(edges, query.Edge{From: phi(from), To: phi(to), Pred: preds[rng.Intn(len(preds))]()})
	}
	mapping := make([]int, n)
	for u := range mapping {
		mapping[u] = phi(u) // vertex u plays original vertex phi(u)'s role
	}
	name := "chain"
	if relabel {
		name = "chain-relabeled"
	}
	q, err := query.New(name, n, edges, scoring.Avg{})
	return q, mapping, err
}

func TestStandingEquivalenceRandomized(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(4000 + seed*7919)))
			n := 2 + rng.Intn(2)
			cols := make([]*interval.Collection, n)
			for i := range cols {
				cols[i] = randomStandingCollection(rng, fmt.Sprintf("C%d", i), int64(i)*1_000_000)
			}
			avg := interval.AvgLength(cols...)
			// Build both labelings of one random shape: the same rng
			// state must drive both so the predicates coincide.
			chainSeed := rng.Int63()
			q1, map1, err := randomChain(rand.New(rand.NewSource(chainSeed)), n, avg, false)
			if err != nil {
				t.Fatal(err)
			}
			q2, map2, err := randomChain(rand.New(rand.NewSource(chainSeed)), n, avg, true)
			if err != nil {
				t.Fatal(err)
			}
			k := 1 + rng.Intn(15)
			k2 := 1 + rng.Intn(15) // second subscriber at its own k

			e := newTestEngine(t, cols, core.Options{
				Granules: 3 + rng.Intn(8),
				K:        k,
				Reducers: 2 + rng.Intn(5),
			})
			m := NewManager(e, Options{})
			defer m.Close()

			type subscriber struct {
				label string
				sub   *Subscription
				tk    *TopK
				q     *query.Query
				map_  []int
				k     int
			}
			mk := func(label string, q *query.Query, mapping []int, k int) *subscriber {
				sub, err := m.Subscribe(context.Background(), q, k, SubOptions{Mapping: mapping})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				t.Cleanup(sub.Close)
				return &subscriber{label: label, sub: sub, tk: NewTopK(k), q: q, map_: mapping, k: k}
			}
			subs := []*subscriber{
				mk("orig", q1, map1, k),
				mk("other-k", q1, map1, k2),
				mk("isomorphic", q2, map2, k),
			}
			if got, want := subs[2].sub.PlanKey(), subs[0].sub.PlanKey(); got != want {
				t.Fatalf("isomorphic subscription has its own plan key:\n%s\n%s", got, want)
			}
			if subs[1].sub.PlanKey() == subs[0].sub.PlanKey() {
				t.Fatal("different k shares a plan key")
			}

			check := func(stage string, epoch int64) {
				for _, s := range subs {
					waitEpoch(t, s.sub, s.tk, epoch)
					label := fmt.Sprintf("%s/%s", stage, s.label)
					// Server-side pushed state and client-side
					// materialization agree byte for byte.
					snap, snapEpoch := s.sub.Snapshot()
					if snapEpoch == s.tk.Epoch && !reflect.DeepEqual(snap, s.tk.Results) {
						t.Fatalf("%s: materialized state diverges from server snapshot at epoch %d", label, snapEpoch)
					}
					// Fresh execute at the same epoch.
					want, fe := freshResults(t, e, s.q, s.map_, s.k)
					if fe != epoch {
						t.Fatalf("%s: fresh execute pinned %d, want %d", label, fe, epoch)
					}
					requireEquivalent(t, label, s.q, s.tk.Results, want)
					// The naive oracle over the subscriber's vertex
					// collections.
					vertexCols := make([]*interval.Collection, len(s.map_))
					for v, ci := range s.map_ {
						vertexCols[v] = cols[ci]
					}
					naive, err := baselines.Naive(s.q, vertexCols, s.k)
					if err != nil {
						t.Fatalf("%s: naive: %v", label, err)
					}
					if !join.ScoreMultisetEqual(s.tk.Results, naive, 1e-9) {
						t.Fatalf("%s: materialized top-%d diverges from the naive oracle\n got: %v\nwant: %v",
							label, s.k, s.tk.Results, naive)
					}
				}
			}

			check("initial", 0)
			appends := 5
			if testing.Short() {
				appends = 2
			}
			var counter int64
			for a := 0; a < appends; a++ {
				col := rng.Intn(n)
				span := int64(500 + rng.Intn(4500)) // may widen boundary granules
				batch := make([]interval.Interval, 3+rng.Intn(10))
				for i := range batch {
					counter++
					s := rng.Int63n(span)
					batch[i] = interval.Interval{
						ID:    int64(col)*1_000_000 + 500_000 + counter,
						Start: s,
						End:   s + 1 + rng.Int63n(120),
					}
				}
				epoch, err := e.Append(col, batch)
				if err != nil {
					t.Fatal(err)
				}
				check(fmt.Sprintf("append=%d", a), epoch)
			}
			st := m.Stats()
			if st.Pushes+st.Promotions+st.Resyncs == 0 {
				t.Fatalf("harness pushed nothing: %+v", st)
			}
		})
	}
}
