package standing

import (
	"fmt"
	"sort"
	"strconv"

	"tkij/internal/join"
)

// Delta is one push to a subscription: the membership change carrying
// the subscriber's materialized top-k from one epoch to the next. A
// subscriber that starts from an empty TopK materializer and applies
// every delta in sequence holds, after each apply, exactly the result
// list a fresh Execute at that epoch would return — the
// push-equals-fresh-execute invariant the equivalence harness enforces.
type Delta struct {
	// Epoch is the store epoch this delta carries the subscription to.
	// One delta may span several append epochs when they landed between
	// two push cycles.
	Epoch int64
	// Seq numbers the subscription's deltas from 1, strictly
	// increasing. An incremental delta applies only at exactly the next
	// sequence number; a resync applies at any later one (it replaces
	// state wholesale, absorbing deltas coalesced away before it).
	Seq uint64
	// Resync marks a full-state delta: TopK replaces the subscriber's
	// materialized results. Emitted for the initial snapshot, after
	// slow-subscriber coalescing, after a store rebuild
	// (InvalidateStore), and when incremental revalidation could not
	// certify the floor (affected region too large, granulation swap).
	Resync bool
	// TopK is a resync delta's full result list (nil otherwise), sorted
	// by the pipeline's total order.
	TopK []join.Result
	// Entered and Left are an incremental delta's membership changes,
	// each sorted by the pipeline's total order (descending score,
	// tuple-ID tie-break). A promoted epoch that changed nothing the
	// subscription reads carries both empty — the delta still advances
	// Epoch.
	Entered []join.Result
	Left    []join.Result
	// Floor is the k-th result score after applying this delta (-1
	// while fewer than k results exist) — the exact score floor the
	// next epoch's re-probe prunes against.
	Floor float64
}

// TopK materializes a subscription's result list on the consumer side
// by applying Deltas in order. The zero value is not ready; use
// NewTopK. The first delta on every subscription channel is a resync
// carrying the initial snapshot, so consumers start empty and treat all
// deltas uniformly.
type TopK struct {
	// K is the subscription's result count.
	K int
	// Epoch and Seq identify the last applied delta.
	Epoch int64
	Seq   uint64
	// Results is the materialized top-k, sorted by the pipeline's total
	// order.
	Results []join.Result
}

// NewTopK returns an empty materializer for a subscription serving k
// results.
func NewTopK(k int) *TopK { return &TopK{K: k} }

// Apply folds one delta into the materialized state. It validates the
// delta against the subscription contract — sequence chaining, epoch
// monotonicity, membership consistency, result ordering, size bounds
// and the floor — and returns an error (leaving the state unchanged)
// on any violation: a malformed, reordered or replayed delta must fail
// loudly rather than silently diverge from the server's state.
func (t *TopK) Apply(d Delta) error {
	if d.Resync {
		if d.Seq <= t.Seq {
			return fmt.Errorf("standing: resync delta seq %d does not advance seq %d", d.Seq, t.Seq)
		}
		// A resync may rewind the epoch: InvalidateStore restarts the
		// epoch sequence, and the resync is what re-bases the consumer.
		if err := checkSorted(d.TopK); err != nil {
			return fmt.Errorf("standing: resync delta seq %d: %w", d.Seq, err)
		}
		if len(d.TopK) > t.K {
			return fmt.Errorf("standing: resync delta seq %d carries %d results for k=%d", d.Seq, len(d.TopK), t.K)
		}
		if got := floorOf(d.TopK, t.K); got != d.Floor {
			return fmt.Errorf("standing: resync delta seq %d floor %v, results imply %v", d.Seq, d.Floor, got)
		}
		t.Results = append([]join.Result(nil), d.TopK...)
		t.Epoch, t.Seq = d.Epoch, d.Seq
		return nil
	}

	if d.Seq != t.Seq+1 {
		return fmt.Errorf("standing: delta seq %d applied at seq %d (dropped or reordered)", d.Seq, t.Seq)
	}
	if d.Epoch < t.Epoch {
		return fmt.Errorf("standing: delta seq %d rewinds epoch %d to %d", d.Seq, t.Epoch, d.Epoch)
	}
	if d.TopK != nil {
		return fmt.Errorf("standing: incremental delta seq %d carries a resync result list", d.Seq)
	}
	next := make([]join.Result, 0, len(t.Results)+len(d.Entered))
	leaving := make(map[string]int, len(d.Left))
	for _, r := range d.Left {
		leaving[idKey(r)]++
	}
	for _, r := range t.Results {
		k := idKey(r)
		if leaving[k] > 0 {
			leaving[k]--
			continue
		}
		next = append(next, r)
	}
	for k, n := range leaving {
		if n > 0 {
			return fmt.Errorf("standing: delta seq %d removes result %s not in the materialized top-k", d.Seq, k)
		}
	}
	present := make(map[string]bool, len(next))
	for _, r := range next {
		present[idKey(r)] = true
	}
	for _, r := range d.Entered {
		k := idKey(r)
		if present[k] {
			return fmt.Errorf("standing: delta seq %d enters result %s already in the materialized top-k", d.Seq, k)
		}
		present[k] = true
		next = append(next, r)
	}
	sort.Slice(next, func(i, j int) bool { return join.Less(next[i], next[j]) })
	if len(next) > t.K {
		return fmt.Errorf("standing: delta seq %d grows the top-k to %d for k=%d", d.Seq, len(next), t.K)
	}
	if len(next) < len(t.Results) {
		// Appends only add results; within one store generation the
		// top-k never shrinks (shrinks arrive as resyncs).
		return fmt.Errorf("standing: delta seq %d shrinks the top-k from %d to %d", d.Seq, len(t.Results), len(next))
	}
	if got := floorOf(next, t.K); got != d.Floor {
		return fmt.Errorf("standing: delta seq %d floor %v, results imply %v", d.Seq, d.Floor, got)
	}
	t.Results = next
	t.Epoch, t.Seq = d.Epoch, d.Seq
	return nil
}

// checkSorted verifies rs is strictly ordered under the pipeline's
// total order (which admits no equal distinct elements: ties break on
// tuple IDs).
func checkSorted(rs []join.Result) error {
	for i := 1; i < len(rs); i++ {
		if !join.Less(rs[i-1], rs[i]) {
			return fmt.Errorf("results out of order at index %d", i)
		}
	}
	return nil
}

// floorOf returns the exact k-th result score, or -1 while fewer than k
// results exist (matching join.TopK.Threshold's not-yet-full contract).
func floorOf(rs []join.Result, k int) float64 {
	if len(rs) < k {
		return -1
	}
	return rs[k-1].Score
}

// idKey is a result's identity: its tuple-ID vector. The pipeline's
// tie-break contract already requires IDs to identify intervals within
// a collection, so the vector identifies a result tuple.
func idKey(r join.Result) string {
	b := make([]byte, 0, len(r.Tuple)*8)
	for _, iv := range r.Tuple {
		b = strconv.AppendInt(b, iv.ID, 10)
		b = append(b, ',')
	}
	return string(b)
}

// diffResults computes the membership difference old -> fresh, both
// sorted under the pipeline's total order; entered and left inherit
// that order.
func diffResults(old, fresh []join.Result) (entered, left []join.Result) {
	oldKeys := make(map[string]bool, len(old))
	for _, r := range old {
		oldKeys[idKey(r)] = true
	}
	freshKeys := make(map[string]bool, len(fresh))
	for _, r := range fresh {
		freshKeys[idKey(r)] = true
	}
	for _, r := range fresh {
		if !oldKeys[idKey(r)] {
			entered = append(entered, r)
		}
	}
	for _, r := range old {
		if !freshKeys[idKey(r)] {
			left = append(left, r)
		}
	}
	return entered, left
}

// mergeTopK merges the previous snapshot with the probe's results into
// the fresh top-k. In the append-only model the fresh top-k is a subset
// of snapshot ∪ probe: existing scores never change, so an old tuple in
// the fresh top-k was already in the old top-k, and a new tuple
// contains an appended interval, lives in an affected combination, and
// beat fewer than k tuples globally — hence fewer than k inside the
// probe, which returns it. The probe may re-emit old snapshot members
// living in affected combinations; dedup by tuple identity before the
// bounded merge.
func mergeTopK(k int, snapshot, probed []join.Result) []join.Result {
	tk := join.NewTopK(k)
	seen := make(map[string]bool, len(snapshot))
	for _, r := range snapshot {
		tk.Add(r)
		seen[idKey(r)] = true
	}
	for _, r := range probed {
		if !seen[idKey(r)] {
			tk.Add(r)
		}
	}
	return tk.Results()
}
