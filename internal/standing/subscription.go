package standing

import (
	"context"
	"fmt"
	"sync"

	"tkij/internal/join"
	"tkij/internal/plancache"
	"tkij/internal/query"
	"tkij/internal/topbuckets"
)

// Subscription is one registered standing query: a canonical plan key,
// a pinned diff base (epoch, store generation, bucket-matrix
// fingerprint) and the current pushed top-k snapshot. The manager
// advances it on every ingest notification; the consumer receives the
// resulting Deltas on the channel returned by Deltas.
//
// Lifecycle: the subscription ends when its context is canceled, when
// Close is called, or when the manager shuts down or hits an execution
// error serving it — in every case the delta channel is closed (Err
// reports the cause, nil for a clean close) and its pinned resources
// are released.
type Subscription struct {
	id      uint64
	m       *Manager
	q       *query.Query
	mapping []int
	k       int
	key     string
	buffer  int
	// The stored context is the subscription's lifetime handle: Subscribe
	// registers long-lived server-side state on the caller's behalf, and
	// cancellation is how the caller unsubscribes remotely. The forwarder
	// goroutine watches it; it is not passed onward per-call except to
	// bound push work done for this subscription.
	//tkij:ignore ctxflow -- the subscription context IS the registration's lifetime; it is stored once at Subscribe and only ever consulted/threaded by the goroutines serving that registration
	ctx context.Context
	// cancel cancels ctx (a Subscribe-derived child of the caller's
	// context); terminate fires it so that executes and probes in flight
	// on this subscription's behalf — which can dwarf the teardown path
	// on large stores — abandon their work instead of running to
	// completion for a consumer that is gone.
	cancel context.CancelFunc
	// bounder memoizes loose pair bounds across push cycles; pair bounds
	// depend only on granule boxes, so they survive in-range appends
	// untouched. Accessed only by the manager's dispatcher goroutine
	// (creation in Subscribe happens-before via subscription
	// registration).
	bounder *topbuckets.LooseBounder

	mu       sync.Mutex
	snapshot []join.Result
	epoch    int64
	gen      int64
	state    *plancache.EpochState
	seq      uint64
	queue    []Delta
	lagged   bool
	closed   bool
	err      error

	ch     chan Delta
	notify chan struct{} // capacity 1: queue-changed nudge for the forwarder
	done   chan struct{} // closed by terminate
}

// Deltas returns the subscription's delta channel. The first delta is
// always a resync carrying the initial snapshot. The channel closes
// when the subscription ends; check Err afterwards.
func (s *Subscription) Deltas() <-chan Delta { return s.ch }

// PlanKey returns the canonical plan-identity key the standing plan is
// registered under — isomorphic subscriptions at the same k share it
// (and share plan-cache entries through it).
func (s *Subscription) PlanKey() string { return s.key }

// K returns the subscription's result count.
func (s *Subscription) K() int { return s.k }

// Snapshot returns a copy of the current pushed top-k and the epoch it
// is valid at — the server-side state, which may be ahead of what the
// consumer has drained from Deltas.
func (s *Subscription) Snapshot() ([]join.Result, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]join.Result(nil), s.snapshot...), s.epoch
}

// Epoch returns the store epoch the subscription's pushed state is
// valid at.
func (s *Subscription) Epoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Err returns the terminal error after the delta channel closed: nil
// for a clean close (Close, manager shutdown), the cause otherwise
// (context cancellation, an execution failure while serving it).
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close unsubscribes: the subscription is deregistered, pending deltas
// are dropped and the delta channel closes. Idempotent, safe from any
// goroutine.
func (s *Subscription) Close() { s.terminate(nil) }

// terminate ends the subscription with err as its terminal cause (nil
// = clean). First caller wins; idempotent.
func (s *Subscription) terminate(err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.err = err
	close(s.done)
	s.mu.Unlock()
	s.cancel()
	s.m.remove(s.id, err)
}

// commit atomically installs the pushed state for a new (epoch, gen)
// and queues the incremental delta that carries consumers there, under
// the slow-subscriber policy: when the consumer is not draining fast
// enough, everything pending coalesces into a single resync built from
// the freshly installed snapshot — the manager (and Append behind it)
// never blocks on a subscriber.
func (s *Subscription) commit(epoch, gen int64, state *plancache.EpochState, snapshot []join.Result, d Delta) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.snapshot = snapshot
	s.epoch, s.gen, s.state = epoch, gen, state
	s.seq++
	var dropped int64
	if s.lagged || len(s.queue) >= s.buffer {
		s.lagged = true
		dropped = droppedIn(s.queue) + 1 // pending increments + d itself
		s.queue = append(s.queue[:0], s.resyncDeltaLocked())
	} else {
		d.Seq = s.seq
		s.queue = append(s.queue, d)
	}
	s.mu.Unlock()
	// Outside s.mu: countDropped takes the manager lock, and the
	// manager's Quiesce holds it while reading s.mu (lock order m -> s).
	s.m.countDropped(dropped)
	s.wakeForwarder()
}

// commitResync installs the pushed state and replaces everything
// pending with one resync delta built from it (initial snapshot, store
// rebuild, revalidation fallback).
func (s *Subscription) commitResync(epoch, gen int64, state *plancache.EpochState, snapshot []join.Result) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.snapshot = snapshot
	s.epoch, s.gen, s.state = epoch, gen, state
	s.seq++
	dropped := droppedIn(s.queue)
	s.queue = append(s.queue[:0], s.resyncDeltaLocked())
	s.mu.Unlock()
	s.m.countDropped(dropped)
	s.wakeForwarder()
}

// droppedIn counts the queued incremental deltas a coalescing resync
// supersedes (synthetic resyncs it replaces are not consumer-visible
// losses).
func droppedIn(queue []Delta) int64 {
	var n int64
	for _, d := range queue {
		if !d.Resync {
			n++
		}
	}
	return n
}

// resyncDeltaLocked builds a resync delta from the current snapshot at
// the current seq. Callers hold s.mu.
func (s *Subscription) resyncDeltaLocked() Delta {
	return Delta{
		Epoch:  s.epoch,
		Seq:    s.seq,
		Resync: true,
		TopK:   append([]join.Result(nil), s.snapshot...),
		Floor:  floorOf(s.snapshot, s.k),
	}
}

func (s *Subscription) wakeForwarder() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// forward is the subscription's delivery goroutine: it drains the
// bounded queue into the consumer channel, honoring cancellation, and
// closes the channel when the subscription ends. It is the only writer
// (and closer) of s.ch.
func (s *Subscription) forward() {
	defer s.m.wg.Done()
	defer close(s.ch)
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			select {
			case <-s.notify:
			case <-s.ctx.Done():
				s.terminate(fmt.Errorf("standing: subscription context: %w", s.ctx.Err()))
				return
			case <-s.done:
				return
			}
			continue
		}
		d := s.queue[0]
		s.queue = s.queue[:copy(s.queue, s.queue[1:])]
		if d.Resync {
			// The consumer is about to receive the full state; stop
			// coalescing and resume incremental deltas from here.
			s.lagged = false
		}
		s.mu.Unlock()
		select {
		case s.ch <- d:
		case <-s.ctx.Done():
			s.terminate(fmt.Errorf("standing: subscription context: %w", s.ctx.Err()))
			return
		case <-s.done:
			return
		}
	}
}
