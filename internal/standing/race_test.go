package standing

// Interleaving tests, run under -race in CI: concurrent Subscribe,
// Append, unsubscribe (ctx cancel and Close), InvalidateStore and
// manager Close. The contracts under fire: consumers never observe a
// partial or malformed delta (TopK.Apply validates every one), a
// canceled or never-draining subscriber neither blocks Append nor
// poisons other subscriptions, and teardown releases every pinned
// store view.

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tkij/internal/core"
	"tkij/internal/query"
	"tkij/internal/scoring"
)

func TestStandingConcurrentChurn(t *testing.T) {
	e := newTestEngine(t, testCols(3, 120, 31), core.Options{Granules: 5, K: 6, Reducers: 2})
	m := NewManager(e, Options{})
	q := query.Qbb(query.Env{Params: scoring.P1})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var appends atomic.Int64

	// Appender: continuous small batches; must never block on any
	// subscriber.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(41))
		var counter int64
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			col := i % 3
			if _, err := e.Append(col, randBatch(rng, col, 3, &counter)); err != nil {
				t.Error(err)
				return
			}
			appends.Add(1)
		}
	}()

	// Invalidator: periodic store rebuilds racing the push cycles.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(50 * time.Millisecond):
				e.InvalidateStore()
			}
		}
	}()

	// Subscriber churn: each worker subscribes, drains and validates a
	// few deltas, then unsubscribes (alternating ctx cancel and Close)
	// and resubscribes.
	const churners = 3
	for w := 0; w < churners; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithCancel(context.Background())
				sub, err := m.Subscribe(ctx, q, 6, SubOptions{Buffer: 2})
				if err != nil {
					cancel()
					if err == ErrClosed {
						return
					}
					t.Error(err)
					return
				}
				tk := NewTopK(6)
				for drained := 0; drained < 4; drained++ {
					select {
					case d, ok := <-sub.Deltas():
						if !ok {
							drained = 4
							break
						}
						if err := tk.Apply(d); err != nil {
							t.Errorf("worker %d round %d: %v", w, round, err)
							cancel()
							return
						}
					case <-time.After(5 * time.Second):
						t.Errorf("worker %d round %d: no delta", w, round)
						cancel()
						return
					case <-stop:
						cancel()
						sub.Close()
						return
					}
				}
				if round%2 == 0 {
					cancel()
				} else {
					sub.Close()
					cancel()
				}
			}
		}(w)
	}

	// A poisoned-pill subscriber: canceled immediately, never drained.
	// Appends must keep flowing regardless.
	pillCtx, pillCancel := context.WithCancel(context.Background())
	pill, err := m.Subscribe(pillCtx, q, 6, SubOptions{Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	pillCancel()
	_ = pill

	deadline := time.After(2 * time.Second)
	before := appends.Load()
	<-deadline
	if appends.Load() == before {
		t.Error("appends stalled while subscribers churned")
	}
	close(stop)
	wg.Wait()
	m.Close()

	// Every pin and view released: the live-view count of the current
	// store must be exactly zero once the manager is down. (The store
	// is nil when the run ended on an InvalidateStore — nothing can be
	// pinned then either.)
	if st := e.Store(); st != nil {
		if vs := st.ViewStats(); vs.Live != 0 {
			t.Fatalf("%d live store views after Close", vs.Live)
		}
	}
}

// TestStandingCloseRaces: Close racing Subscribe and Append neither
// deadlocks nor leaks subscriptions; late Subscribes fail with
// ErrClosed.
func TestStandingCloseRaces(t *testing.T) {
	e := newTestEngine(t, testCols(3, 100, 32), core.Options{Granules: 5, K: 5, Reducers: 2})
	m := NewManager(e, Options{})
	q := query.Qbb(query.Env{Params: scoring.P1})

	var wg sync.WaitGroup
	subs := make(chan *Subscription, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				sub, err := m.Subscribe(context.Background(), q, 5, SubOptions{})
				if err != nil {
					if err == ErrClosed {
						return
					}
					t.Error(err)
					return
				}
				subs <- sub
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(42))
		var counter int64
		for i := 0; i < 10; i++ {
			if _, err := e.Append(i%3, randBatch(rng, i%3, 2, &counter)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	m.Close()
	wg.Wait()
	close(subs)

	// Every handed-out subscription's channel closes with a clean Err.
	for sub := range subs {
		for range sub.Deltas() {
		}
		if err := sub.Err(); err != nil {
			t.Fatalf("close-raced subscription terminated with %v", err)
		}
	}
	if vs := e.Store().ViewStats(); vs.Live != 0 {
		t.Fatalf("%d live store views after Close", vs.Live)
	}

	if _, err := m.Subscribe(context.Background(), q, 5, SubOptions{}); err != ErrClosed {
		t.Fatalf("Subscribe after Close = %v", err)
	}
}

// TestCanceledSubscriberDoesNotPoison: one subscriber's cancellation
// mid-stream leaves a healthy subscriber tracking fresh executes.
func TestCanceledSubscriberDoesNotPoison(t *testing.T) {
	e := newTestEngine(t, testCols(3, 200, 33), core.Options{Granules: 6, K: 8, Reducers: 3})
	m := NewManager(e, Options{})
	defer m.Close()
	q := query.Qbb(query.Env{Params: scoring.P1})

	ctx, cancel := context.WithCancel(context.Background())
	doomed, err := m.Subscribe(ctx, q, 8, SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := m.Subscribe(context.Background(), q, 8, SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	tk := NewTopK(8)
	waitEpoch(t, healthy, tk, 0)

	rng := rand.New(rand.NewSource(43))
	var counter int64
	epoch, err := e.Append(0, randBatch(rng, 0, 5, &counter))
	if err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, healthy, tk, epoch)
	cancel() // doomed dies mid-stream
	for range doomed.Deltas() {
	}

	epoch, err = e.Append(1, randBatch(rng, 1, 5, &counter))
	if err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, healthy, tk, epoch)
	want, _ := freshResults(t, e, q, identity(3), 8)
	requireEquivalent(t, "after peer cancel", q, tk.Results, want)
}
