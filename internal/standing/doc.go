// Package standing serves continuous top-k subscriptions over the
// engine's streaming ingest: a subscription registers a query shape
// once (canonical plan key, current top-k snapshot, certified k-th
// score floor, bucket-count fingerprint) and thereafter receives
// incremental Deltas pushed after every append, instead of re-executing
// the query per epoch.
//
// The push path exploits the append-only epoch model. After an append,
// only bucket combinations containing a grown bucket can hold new
// result tuples; existing tuples never change score, so the fresh top-k
// is a subset of (old snapshot ∪ probe of the grown combinations).
// Each push cycle pins the engine once, diffs every subscription's
// bucket-count fingerprint (plancache.EpochState) against the pinned
// matrices and takes the cheapest sound route:
//
//   - promote — nothing grew in the subscription's matrices: the
//     snapshot carries over verbatim, the delta just advances Epoch.
//   - incremental probe — enumerate the grown combinations
//     (topbuckets.EnumerateAffected), bound them
//     (topbuckets.TightenBounds), prune those whose score upper bound
//     falls strictly below the snapshot's exact k-th score, probe the
//     survivors through core.Engine.ProbePinned (the same join runner a
//     fresh execution uses — local or sharded, with floor broadcast),
//     merge, and push the membership difference.
//   - resync — the diff base is void (store rebuild, granulation swap)
//     or the affected region exceeds Options.MaxAffected: re-execute
//     fresh and push the full state.
//
// The invariant gating all of it: a consumer materializing deltas
// through TopK.Apply holds, after every delta, byte-identically the
// result list a fresh Execute at that delta's epoch returns. The
// equivalence harness in this package enforces it against both the
// pipeline and the naive baseline.
//
// Subscribers never block ingest: the ingest hook is a non-blocking
// nudge to the dispatcher, and each subscription's delta queue is
// bounded — when a consumer lags, pending increments coalesce into a
// single resync (Delta.Resync) that re-bases it wholesale.
package standing
