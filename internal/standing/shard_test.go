package standing

// Regression for the join.Runner seam: a standing subscription on a
// sharded engine re-probes through shard.Cluster — DTB tasks scatter to
// worker replicas over the wire protocol, with or without floor
// broadcast — and must emit byte-identical deltas to the same
// subscription served by the local in-process runner over the same
// appends. Any divergence means ProbePinned's combination list or floor
// seeding behaves differently through the cluster seam.

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"tkij/internal/core"
	"tkij/internal/interval"
	"tkij/internal/query"
	"tkij/internal/scoring"
)

func cloneCols(cols []*interval.Collection) []*interval.Collection {
	out := make([]*interval.Collection, len(cols))
	for i, c := range cols {
		out[i] = &interval.Collection{Name: c.Name, Items: slices.Clone(c.Items)}
	}
	return out
}

func TestStandingShardedDeltasMatchLocal(t *testing.T) {
	base := testCols(3, 250, 51)
	const k = 8
	mkOpts := func(shards int, noFloor bool) core.Options {
		return core.Options{
			Granules: 6, K: k, Reducers: 3,
			Shards:                shards,
			ShardNoFloorBroadcast: noFloor,
		}
	}
	variants := []struct {
		label string
		opts  core.Options
	}{
		{"local", mkOpts(0, false)},
		{"shards=2", mkOpts(2, false)},
		{"shards=3", mkOpts(3, false)},
		{"shards=2/no-floor-broadcast", mkOpts(2, true)},
	}
	q := query.Qbb(query.Env{Params: scoring.P1})

	type leg struct {
		label  string
		e      *core.Engine
		m      *Manager
		sub    *Subscription
		deltas []Delta
		tk     *TopK
	}
	legs := make([]*leg, len(variants))
	for i, v := range variants {
		e := newTestEngine(t, cloneCols(base), v.opts)
		m := NewManager(e, Options{})
		t.Cleanup(m.Close)
		sub, err := m.Subscribe(context.Background(), q, k, SubOptions{Buffer: 64})
		if err != nil {
			t.Fatalf("%s: %v", v.label, err)
		}
		t.Cleanup(sub.Close)
		legs[i] = &leg{label: v.label, e: e, m: m, sub: sub, tk: NewTopK(k)}
	}

	drain := func(l *leg, epoch int64) {
		t.Helper()
		for l.tk.Seq == 0 || l.tk.Epoch < epoch {
			d, ok := <-l.sub.Deltas()
			if !ok {
				t.Fatalf("%s: channel closed: %v", l.label, l.sub.Err())
			}
			if err := l.tk.Apply(d); err != nil {
				t.Fatalf("%s: apply seq %d: %v", l.label, d.Seq, err)
			}
			l.deltas = append(l.deltas, d)
		}
	}
	compare := func(stage string) {
		t.Helper()
		ref := legs[0]
		for _, l := range legs[1:] {
			if !reflect.DeepEqual(l.tk.Results, ref.tk.Results) {
				t.Fatalf("%s: %s materialized top-%d diverges from local\n got: %v\nwant: %v",
					stage, l.label, k, l.tk.Results, ref.tk.Results)
			}
			if !reflect.DeepEqual(l.deltas, ref.deltas) {
				t.Fatalf("%s: %s delta stream diverges from local\n got: %v\nwant: %v",
					stage, l.label, l.deltas, ref.deltas)
			}
		}
	}

	for _, l := range legs {
		drain(l, 0)
	}
	compare("initial")

	rng := rand.New(rand.NewSource(52))
	var counter int64
	for a := 0; a < 6; a++ {
		col := a % 3
		batch := randBatch(rng, col, 4, &counter)
		var epoch int64
		for _, l := range legs {
			ep, err := l.e.Append(col, slices.Clone(batch))
			if err != nil {
				t.Fatalf("%s: %v", l.label, err)
			}
			epoch = ep
		}
		for _, l := range legs {
			drain(l, epoch)
		}
		compare(fmt.Sprintf("append=%d", a))
	}

	// The sharded legs must actually have probed incrementally — a
	// silent fall-back to resync would vacuously pass the comparison.
	for _, l := range legs {
		if st := l.m.Stats(); st.Pushes == 0 {
			t.Fatalf("%s: no incremental pushes recorded: %+v", l.label, st)
		}
	}
}
