package standing

// FuzzStandingDelta drives the full push pipeline with a fuzz-chosen
// append sequence and checks the delta stream both ways: applied in
// order it reproduces the fresh result set exactly, and replayed,
// reordered or tampered-with it must fail TopK.Apply loudly — a client
// can trust that a successfully applied stream IS the server's state.

import (
	"context"
	"testing"

	"tkij/internal/core"
	"tkij/internal/interval"
	"tkij/internal/query"
	"tkij/internal/scoring"
)

func FuzzStandingDelta(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x20})
	f.Add([]byte{0x81, 0x42, 0x13, 0xf4, 0x55, 0x26})
	f.Add([]byte{0xff, 0xff, 0x00, 0x01, 0x80, 0x7f, 0x33, 0x99})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 24 {
			return
		}
		const k = 5
		cols := testCols(2, 60, 21)
		e, err := core.NewEngine(cols, core.Options{Granules: 4, K: k, Reducers: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		if err := e.PrepareStats(); err != nil {
			t.Fatal(err)
		}
		q, err := query.New("fuzz2", 2,
			[]query.Edge{{From: 0, To: 1, Pred: scoring.Before(scoring.P1)}}, scoring.Avg{})
		if err != nil {
			t.Fatal(err)
		}
		m := NewManager(e, Options{})
		defer m.Close()

		sub, err := m.Subscribe(context.Background(), q, k, SubOptions{Buffer: 64})
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()

		// Each fuzz byte becomes one appended interval: bits pick the
		// collection, start and length (including spans past the
		// original granulation, widening boundary granules).
		tk := NewTopK(k)
		var stream []Delta
		apply := func(d Delta) {
			if err := tk.Apply(d); err != nil {
				t.Fatalf("apply delta seq %d: %v", d.Seq, err)
			}
			stream = append(stream, d)
		}
		waitFor := func(epoch int64) {
			for tk.Seq == 0 || tk.Epoch < epoch {
				d, ok := <-sub.Deltas()
				if !ok {
					t.Fatalf("channel closed: %v", sub.Err())
				}
				apply(d)
			}
		}
		waitFor(0)
		for i, b := range data {
			col := int(b >> 7)
			start := int64(b&0x7f) * 40 // 0..5080: past the ~3000 span
			iv := interval.Interval{
				ID:    int64(col)*1_000_000 + 500_000 + int64(i),
				Start: start,
				End:   start + 1 + int64(b%37),
			}
			epoch, err := e.Append(col, []interval.Interval{iv})
			if err != nil {
				t.Fatal(err)
			}
			waitFor(epoch)

			want, _ := freshResults(t, e, q, identity(2), k)
			requireEquivalent(t, "fuzz", q, tk.Results, want)
		}

		// The honest stream replays cleanly from scratch.
		replay := NewTopK(k)
		for _, d := range stream {
			if err := replay.Apply(d); err != nil {
				t.Fatalf("honest replay failed at seq %d: %v", d.Seq, err)
			}
		}

		// Replaying any delta twice must error (resyncs by seq
		// non-advance, increments by the seq chain).
		for i, d := range stream {
			dup := NewTopK(k)
			for _, p := range stream[:i+1] {
				if err := dup.Apply(p); err != nil {
					t.Fatal(err)
				}
			}
			if err := dup.Apply(d); err == nil {
				t.Fatalf("replaying delta seq %d twice was accepted", d.Seq)
			}
		}

		// Skipping an incremental delta must error at the gap.
		for i := 1; i < len(stream); i++ {
			if stream[i].Resync {
				continue
			}
			skip := NewTopK(k)
			for _, p := range stream[:i-1] {
				if err := skip.Apply(p); err != nil {
					t.Fatal(err)
				}
			}
			if !stream[i-1].Resync {
				if err := skip.Apply(stream[i]); err == nil {
					t.Fatalf("skipped delta seq %d was accepted", stream[i-1].Seq)
				}
			}
		}

		// A tampered delta must error: corrupt the floor of each
		// incremental delta carrying results.
		for i, d := range stream {
			if d.Resync && len(d.TopK) == 0 {
				continue
			}
			bad := d
			bad.Floor = d.Floor + 0.25
			tam := NewTopK(k)
			for _, p := range stream[:i] {
				if err := tam.Apply(p); err != nil {
					t.Fatal(err)
				}
			}
			if err := tam.Apply(bad); err == nil {
				t.Fatalf("tampered floor on delta seq %d was accepted", d.Seq)
			}
		}
	})
}
