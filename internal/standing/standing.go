package standing

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"tkij/internal/core"
	"tkij/internal/obs"
	"tkij/internal/plancache"
	"tkij/internal/query"
	"tkij/internal/stats"
	"tkij/internal/topbuckets"
)

// ErrClosed is returned by Subscribe after the manager shut down.
var ErrClosed = errors.New("standing: manager closed")

// DefaultBuffer is the default per-subscription delta-queue capacity.
const DefaultBuffer = 16

// Options tunes a Manager.
type Options struct {
	// MaxAffected bounds how many grown bucket combinations one push
	// cycle is willing to re-probe incrementally; past it the
	// subscription falls back to a full re-execute (<= 0 means
	// plancache.DefaultMaxAffected, the same default the plan cache
	// uses for its revalidation bound).
	MaxAffected float64
	// Buffer is the default per-subscription delta-queue capacity
	// before the slow-subscriber policy coalesces pending deltas into a
	// resync (<= 0 means DefaultBuffer).
	Buffer int
}

func (o Options) withDefaults() Options {
	if o.MaxAffected <= 0 {
		o.MaxAffected = plancache.DefaultMaxAffected
	}
	if o.Buffer <= 0 {
		o.Buffer = DefaultBuffer
	}
	return o
}

// SubOptions tunes one subscription.
type SubOptions struct {
	// Mapping maps query vertices to collection indices (nil =
	// identity, like Engine.Execute).
	Mapping []int
	// Buffer overrides the manager's per-subscription delta-queue
	// capacity (<= 0 keeps the manager default).
	Buffer int
}

// Stats counts the manager's work since construction. Snapshot via
// Manager.Stats.
type Stats struct {
	// Subscribed and Unsubscribed count registrations and removals
	// (Unsubscribed includes failures; Failed counts the subset
	// terminated by an error).
	Subscribed   int64
	Unsubscribed int64
	Failed       int64
	// Cycles counts ingest-notification cycles served (one pin each).
	Cycles int64
	// Pushes counts incremental delta pushes; Promotions the cycles
	// where a subscription's epoch advanced with provably unchanged
	// results; Resyncs the full re-executions.
	Pushes     int64
	Promotions int64
	Resyncs    int64
	// AffectedCombos sums the grown-combination counts incremental
	// pushes enumerated; ProbedCombos the combinations actually probed
	// after floor pruning; PrunedCombos the difference. The standing
	// claim — push work scales with the affected region, not the
	// dataset — is read off these.
	AffectedCombos int64
	ProbedCombos   int64
	PrunedCombos   int64
	// DroppedDeltas counts incremental deltas coalesced away by the
	// slow-subscriber policy (each followed by a resync).
	DroppedDeltas int64
}

// Manager serves standing queries over one engine: it registers
// subscriptions, listens for the engine's ingest notifications and, per
// published epoch, pins once and carries every subscription forward —
// incrementally (probing only the grown bucket combinations against the
// subscription's certified floor) when it can, by full re-execute when
// it cannot. Safe for concurrent use.
type Manager struct {
	e    *core.Engine
	opts Options

	mu     sync.Mutex
	cond   *sync.Cond // broadcast after every cycle and every removal
	subs   map[uint64]*Subscription
	nextID uint64
	closed bool
	stats  Stats

	kick chan struct{} // capacity 1: ingest-notification nudge
	done chan struct{}
	wg   sync.WaitGroup
}

// NewManager returns a manager serving standing queries over e and
// installs itself as e's ingest hook. Close detaches it; an engine
// carries at most one manager at a time.
func NewManager(e *core.Engine, opts Options) *Manager {
	m := &Manager{
		e:    e,
		opts: opts.withDefaults(),
		subs: make(map[uint64]*Subscription),
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	e.SetIngestHook(m.wake)
	m.wg.Add(1)
	go m.loop()
	return m
}

// wake nudges the dispatcher; it never blocks (it runs inside Append's
// caller, after the engine lock is released).
func (m *Manager) wake() {
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

// loop is the dispatcher goroutine: one cycle per ingest nudge,
// coalescing bursts (a cycle started after N appends serves all N).
func (m *Manager) loop() {
	defer m.wg.Done()
	for {
		select {
		case <-m.done:
			return
		case <-m.kick:
		}
		m.cycle()
		m.mu.Lock()
		m.stats.Cycles++
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// subOrder orders subscriptions by registration id — the deterministic
// service order inside a cycle.
func subOrder(a, b *Subscription) int {
	switch {
	case a.id < b.id:
		return -1
	case a.id > b.id:
		return 1
	}
	return 0
}

// cycle pins the current epoch once and pushes every live subscription
// to it.
func (m *Manager) cycle() {
	m.mu.Lock()
	live := make([]*Subscription, 0, len(m.subs))
	for _, s := range m.subs {
		live = append(live, s)
	}
	m.mu.Unlock()
	if len(live) == 0 {
		return
	}
	slices.SortFunc(live, subOrder)

	cycleSpan := m.e.Tracer().Root("push-cycle")
	start := time.Now()
	pin, err := m.e.Pin()
	if err != nil {
		cycleSpan.Finish()
		for _, s := range live {
			s.terminate(fmt.Errorf("standing: pin for push cycle: %w", err))
		}
		return
	}
	defer pin.Release()
	if cycleSpan != nil {
		cycleSpan.SetInt("epoch", pin.Epoch())
		cycleSpan.SetInt("subscriptions", int64(len(live)))
	}
	for _, s := range live {
		m.push(s, pin, cycleSpan)
	}
	mCycles.Inc()
	mCycleSeconds.ObserveDuration(time.Since(start))
	cycleSpan.Finish()
}

// push carries one subscription from its current pushed state to the
// pin's epoch: promote (nothing grown), incremental probe, or resync.
func (m *Manager) push(s *Subscription, pin *core.Pin, cycleSpan *obs.Span) {
	if s.ctx.Err() != nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	snapshot := s.snapshot
	epoch0, gen0, state := s.epoch, s.gen, s.state
	s.mu.Unlock()

	epoch, gen := pin.Epoch(), pin.Generation()
	if epoch == epoch0 && gen == gen0 {
		return // already there (a burst served by an earlier cycle)
	}

	vms := make([]*stats.Matrix, s.q.NumVertices)
	for v, ci := range s.mapping {
		vms[v] = pin.Matrices()[ci].WithCol(v)
	}

	if gen != gen0 || epoch < epoch0 {
		// Store rebuilt (InvalidateStore) or the epoch sequence
		// restarted: the diff base is void.
		m.resync(s, pin, cycleSpan)
		return
	}
	diff, ok := state.Diff(vms, nil)
	if !ok {
		m.resync(s, pin, cycleSpan) // granulation swap: not an append-only step
		return
	}
	if !diff.AnyGrown() {
		// Nothing this subscription reads changed: promote the pushed
		// state to the new epoch with an empty incremental delta.
		s.commit(epoch, gen, state, snapshot, Delta{
			Epoch: epoch,
			Floor: floorOf(snapshot, s.k),
		})
		m.count(func(st *Stats) { st.Promotions++ })
		mRoutePromote.Inc()
		if ps := cycleSpan.Child("promote"); ps != nil {
			ps.SetInt("epoch", epoch)
			ps.Finish()
		}
		return
	}

	lists := make([][]stats.Bucket, len(vms))
	for v, vm := range vms {
		lists[v] = vm.Buckets()
	}
	affected := topbuckets.CountAffected(lists, diff.Grown)
	if affected > m.opts.MaxAffected {
		m.resync(s, pin, cycleSpan)
		return
	}
	var combos []topbuckets.Combo
	_ = topbuckets.EnumerateAffected(lists, diff.Grown, func(buckets []stats.Bucket) error {
		cb := topbuckets.Combo{Buckets: append([]stats.Bucket(nil), buckets...), NbRes: 1}
		for _, b := range cb.Buckets {
			cb.NbRes *= float64(b.Count)
		}
		combos = append(combos, cb)
		return nil
	})
	// Prune grown combinations that provably cannot reach the pushed
	// top-k, in two phases mirroring the two-phase TopBuckets strategy.
	// Phase one bounds every affected combination with memoized loose
	// pair bounds: pair bounds depend only on granule boxes, so only
	// pairs touching a shape-changed bucket are re-solved and in-range
	// appends re-bound by pure table lookup. Phase two refines the loose
	// survivors with the tight solver — on tie-heavy data loose bounds
	// saturate and prune nothing, and the tight prune is what keeps the
	// probe proportional to the truly contending region. Both prunes are
	// against the floor, the exact k-th snapshot score — sound because
	// the local join discards candidates only strictly below the
	// effective floor, so an entrant tying the floor (winning on the ID
	// tie-break) still surfaces. Keep UB == floor for the same reason.
	floor := floorOf(snapshot, s.k)
	s.bounder.Invalidate(lists, diff.ShapeAffected)
	loose := combos[:0]
	for _, cb := range combos {
		cb.LB, cb.UB = s.bounder.Bound(vms, cb.Buckets)
		if floor < 0 || cb.UB >= floor {
			loose = append(loose, cb)
		}
	}
	kept := loose
	if floor >= 0 && len(loose) > 0 {
		topbuckets.TightenBounds(s.q, vms, loose, m.e.Options().TopBuckets)
		kept = loose[:0]
		for _, cb := range loose {
			if cb.UB >= floor {
				kept = append(kept, cb)
			}
		}
	}
	m.count(func(st *Stats) {
		st.Pushes++
		st.AffectedCombos += int64(len(combos))
		st.ProbedCombos += int64(len(kept))
		st.PrunedCombos += int64(len(combos) - len(kept))
	})
	mRoutePush.Inc()
	mAffectedCombos.Add(int64(len(combos)))
	mProbedCombos.Add(int64(len(kept)))
	mPrunedCombos.Add(int64(len(combos) - len(kept)))
	pushSpan := cycleSpan.Child("push")
	if pushSpan != nil {
		pushSpan.SetInt("affected", int64(len(combos)))
		pushSpan.SetInt("probed", int64(len(kept)))
		defer pushSpan.Finish()
	}

	fresh := snapshot
	if len(kept) > 0 {
		probeFloor := floor
		if probeFloor < 0 {
			probeFloor = 0
		}
		out, err := m.e.ProbePinned(obs.WithSpan(s.ctx, pushSpan), s.q, s.mapping, pin, kept, s.k, probeFloor)
		if err != nil {
			if s.ctx.Err() != nil {
				return // the forwarder terminates it with the ctx cause
			}
			s.terminate(fmt.Errorf("standing: probe: %w", err))
			return
		}
		fresh = mergeTopK(s.k, snapshot, out.Results)
	}
	entered, left := diffResults(snapshot, fresh)
	s.commit(epoch, gen, plancache.CaptureEpochState(vms), fresh, Delta{
		Epoch:   epoch,
		Entered: entered,
		Left:    left,
		Floor:   floorOf(fresh, s.k),
	})
}

// resync re-executes the subscription's query fresh at the pin's epoch
// and replaces its pushed state wholesale.
func (m *Manager) resync(s *Subscription, pin *core.Pin, cycleSpan *obs.Span) {
	// The transition was outside the append-only model (or past the
	// incremental bound): cached pair bounds may alias different boxes.
	s.bounder.Reset()
	mRouteResync.Inc()
	rsSpan := cycleSpan.Child("resync")
	rep, err := m.e.ExecutePinnedK(obs.WithSpan(s.ctx, rsSpan), s.q, s.mapping, pin, s.k)
	rsSpan.Finish()
	if err != nil {
		if s.ctx.Err() != nil {
			return
		}
		s.terminate(fmt.Errorf("standing: resync execute: %w", err))
		return
	}
	rep.Standing = true
	vms := make([]*stats.Matrix, s.q.NumVertices)
	for v, ci := range s.mapping {
		vms[v] = pin.Matrices()[ci].WithCol(v)
	}
	s.commitResync(pin.Epoch(), pin.Generation(), plancache.CaptureEpochState(vms), rep.Results)
	m.count(func(st *Stats) { st.Resyncs++ })
}

// Subscribe registers a standing query: it executes (q, k) once at the
// current epoch, pins that result as the subscription's pushed state and
// returns the handle whose Deltas channel first carries a resync with
// the initial snapshot, then one delta per push cycle. The subscription
// lives until ctx is canceled, Close is called on it, or the manager
// shuts down. k <= 0 uses the engine's Options.K.
func (m *Manager) Subscribe(ctx context.Context, q *query.Query, k int, opts SubOptions) (*Subscription, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	m.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("standing: subscribe: %w", err)
	}
	if k <= 0 {
		k = m.e.Options().K
	}
	mapping := opts.Mapping
	if mapping == nil {
		mapping = make([]int, q.NumVertices)
		for v := range mapping {
			mapping[v] = v
		}
	} else {
		mapping = append([]int(nil), mapping...)
	}
	buffer := opts.Buffer
	if buffer <= 0 {
		buffer = m.opts.Buffer
	}

	pin, err := m.e.Pin()
	if err != nil {
		return nil, fmt.Errorf("standing: subscribe: %w", err)
	}
	defer pin.Release()
	key, err := pin.PlanKeyK(q, mapping, k)
	if err != nil {
		return nil, fmt.Errorf("standing: subscribe: %w", err)
	}
	rep, err := m.e.ExecutePinnedK(ctx, q, mapping, pin, k)
	if err != nil {
		return nil, fmt.Errorf("standing: subscribe: %w", err)
	}
	rep.Standing = true
	vms := make([]*stats.Matrix, q.NumVertices)
	for v, ci := range mapping {
		vms[v] = pin.Matrices()[ci].WithCol(v)
	}

	// The subscription runs on a derived context so terminate can cancel
	// work in flight on its behalf (a resync execute or probe outlives
	// every consumer otherwise).
	sctx, scancel := context.WithCancel(ctx)
	s := &Subscription{
		m:        m,
		q:        q,
		mapping:  mapping,
		k:        k,
		key:      key,
		buffer:   buffer,
		ctx:      sctx,
		cancel:   scancel,
		bounder:  topbuckets.NewLooseBounder(q, m.e.Options().TopBuckets),
		snapshot: rep.Results,
		epoch:    pin.Epoch(),
		gen:      pin.Generation(),
		state:    plancache.CaptureEpochState(vms),
		ch:       make(chan Delta, 1),
		notify:   make(chan struct{}, 1),
		done:     make(chan struct{}),
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		scancel()
		return nil, ErrClosed
	}
	m.nextID++
	s.id = m.nextID
	m.subs[s.id] = s
	m.stats.Subscribed++
	m.wg.Add(1)
	m.mu.Unlock()

	go s.forward()
	// Queue the initial snapshot as the channel's first (resync) delta,
	// then self-kick: any epoch published between our pin and the
	// registration above is caught by the next cycle.
	s.commitResync(s.epoch, s.gen, s.state, s.snapshot)
	m.wake()
	return s, nil
}

// remove deregisters a terminated subscription (called by terminate,
// exactly once per subscription).
func (m *Manager) remove(id uint64, err error) {
	m.mu.Lock()
	if _, ok := m.subs[id]; ok {
		delete(m.subs, id)
		m.stats.Unsubscribed++
		if err != nil {
			m.stats.Failed++
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

// countDropped accumulates coalesced-away deltas into the stats.
func (m *Manager) countDropped(n int64) {
	if n == 0 {
		return
	}
	mDroppedDeltas.Add(n)
	m.count(func(st *Stats) { st.DroppedDeltas += n })
}

func (m *Manager) count(f func(*Stats)) {
	m.mu.Lock()
	f(&m.stats)
	m.mu.Unlock()
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Quiesce blocks until every live subscription's pushed state has
// reached the engine's current epoch and generation (subscriptions
// terminating while it waits stop counting). It does not wait for
// consumers to drain their delta channels — only for the server-side
// push. Primarily for tests and benchmarks that interleave appends with
// assertions on pushed state.
func (m *Manager) Quiesce() {
	for {
		epoch, gen := m.e.Epoch(), m.e.StoreGeneration()
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return
		}
		behind := false
		for _, s := range m.subs {
			s.mu.Lock()
			if s.epoch != epoch || s.gen != gen {
				behind = true
			}
			s.mu.Unlock()
			if behind {
				break
			}
		}
		if !behind {
			m.mu.Unlock()
			// Re-check against the engine: an append may have landed
			// while we held m.mu.
			if e2, g2 := m.e.Epoch(), m.e.StoreGeneration(); e2 == epoch && g2 == gen {
				return
			}
			continue
		}
		m.cond.Wait()
		m.mu.Unlock()
	}
}

// Close shuts the manager down: it detaches the ingest hook, terminates
// every subscription cleanly (their delta channels close with a nil
// Err) and waits for the dispatcher and all forwarders to exit.
// Idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	live := make([]*Subscription, 0, len(m.subs))
	for _, s := range m.subs {
		live = append(live, s)
	}
	m.mu.Unlock()
	slices.SortFunc(live, subOrder)

	m.e.SetIngestHook(nil)
	close(m.done)
	for _, s := range live {
		s.terminate(nil)
	}
	m.wg.Wait()
}
