package standing

import "tkij/internal/obs"

var (
	mCycles = obs.NewCounter("tkij_standing_cycles_total",
		"Ingest-notification push cycles served (one pin each).")
	mCycleSeconds = obs.NewHistogram("tkij_standing_cycle_seconds",
		"Push-cycle latency in seconds (all subscriptions, one pin).", nil)
	mRoutePromote = obs.NewCounterL("tkij_standing_routing_total",
		"Push-cycle routing decisions per subscription.", obs.Labels{"route": "promote"})
	mRoutePush = obs.NewCounterL("tkij_standing_routing_total",
		"Push-cycle routing decisions per subscription.", obs.Labels{"route": "push"})
	mRouteResync = obs.NewCounterL("tkij_standing_routing_total",
		"Push-cycle routing decisions per subscription.", obs.Labels{"route": "resync"})
	mAffectedCombos = obs.NewCounter("tkij_standing_affected_combos_total",
		"Grown bucket combinations enumerated by incremental pushes.")
	mProbedCombos = obs.NewCounter("tkij_standing_probed_combos_total",
		"Combinations actually probed after two-phase floor pruning.")
	mPrunedCombos = obs.NewCounter("tkij_standing_pruned_combos_total",
		"Combinations pruned against the certified floor.")
	mDroppedDeltas = obs.NewCounter("tkij_standing_dropped_deltas_total",
		"Incremental deltas coalesced away by the slow-subscriber policy.")
)
