package standing

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"tkij/internal/core"
	"tkij/internal/interval"
	"tkij/internal/query"
	"tkij/internal/scoring"
)

func newTestEngine(t *testing.T, cols []*interval.Collection, opts core.Options) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(cols, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.PrepareStats(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// TestSubscribeInitialSnapshot: the first delta on every channel is a
// resync carrying exactly the fresh top-k at subscription time.
func TestSubscribeInitialSnapshot(t *testing.T) {
	e := newTestEngine(t, testCols(3, 300, 11), core.Options{Granules: 6, K: 10, Reducers: 3})
	m := NewManager(e, Options{})
	defer m.Close()
	q := query.Qbb(query.Env{Params: scoring.P1})

	sub, err := m.Subscribe(context.Background(), q, 10, SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	d := <-sub.Deltas()
	if !d.Resync || d.Seq != 1 {
		t.Fatalf("first delta must be resync seq 1, got resync=%v seq=%d", d.Resync, d.Seq)
	}
	tk := NewTopK(10)
	if err := tk.Apply(d); err != nil {
		t.Fatal(err)
	}
	want, epoch := freshResults(t, e, q, identity(3), 10)
	if tk.Epoch != epoch {
		t.Fatalf("snapshot epoch %d, engine at %d", tk.Epoch, epoch)
	}
	requireSameResults(t, "initial", tk.Results, want)
	if sub.PlanKey() == "" {
		t.Fatal("subscription has no plan key")
	}
}

// TestIncrementalPush: appends drive incremental deltas whose
// materialization tracks a fresh execute exactly, epoch by epoch.
func TestIncrementalPush(t *testing.T) {
	e := newTestEngine(t, testCols(3, 300, 12), core.Options{Granules: 6, K: 10, Reducers: 3})
	m := NewManager(e, Options{})
	defer m.Close()
	q := query.Qbb(query.Env{Params: scoring.P1})

	sub, err := m.Subscribe(context.Background(), q, 10, SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	tk := NewTopK(10)
	waitEpoch(t, sub, tk, 0)

	rng := rand.New(rand.NewSource(7))
	var counter int64
	for i := 0; i < 8; i++ {
		col := i % 2
		epoch, err := e.Append(col, randBatch(rng, col, 5, &counter))
		if err != nil {
			t.Fatal(err)
		}
		waitEpoch(t, sub, tk, epoch)
		want, fe := freshResults(t, e, q, identity(3), 10)
		if fe != epoch {
			t.Fatalf("fresh execute pinned epoch %d, appended %d", fe, epoch)
		}
		requireEquivalent(t, "after append", q, tk.Results, want)
	}
	st := m.Stats()
	if st.Pushes+st.Promotions == 0 {
		t.Fatalf("no incremental work recorded: %+v", st)
	}
	if st.Resyncs != 0 {
		t.Fatalf("append-only stream forced %d resyncs: %+v", st.Resyncs, st)
	}
}

// TestPromotePath: appends into a collection the query does not read
// advance the subscription's epoch with an empty incremental delta.
func TestPromotePath(t *testing.T) {
	e := newTestEngine(t, testCols(3, 200, 13), core.Options{Granules: 6, K: 5, Reducers: 3})
	m := NewManager(e, Options{})
	defer m.Close()
	q, err := query.New("before2", 2,
		[]query.Edge{{From: 0, To: 1, Pred: scoring.Before(scoring.P1)}}, scoring.Avg{})
	if err != nil {
		t.Fatal(err)
	}

	// The query reads collections 0 and 1; appends go to collection 2.
	sub, err := m.Subscribe(context.Background(), q, 5, SubOptions{Mapping: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	tk := NewTopK(5)
	waitEpoch(t, sub, tk, 0)
	before := append([]float64(nil), scoresOf(tk)...)

	rng := rand.New(rand.NewSource(8))
	var counter int64
	epoch, err := e.Append(2, randBatch(rng, 2, 10, &counter))
	if err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, sub, tk, epoch)
	after := scoresOf(tk)
	if len(before) != len(after) {
		t.Fatalf("promotion changed the top-k size: %d -> %d", len(before), len(after))
	}
	m.Quiesce()
	if st := m.Stats(); st.Promotions == 0 {
		t.Fatalf("append to unread collection did not promote: %+v", st)
	}
}

func scoresOf(tk *TopK) []float64 {
	out := make([]float64, len(tk.Results))
	for i, r := range tk.Results {
		out[i] = r.Score
	}
	return out
}

// TestInvalidateStoreResync: a store rebuild voids the diff base; the
// subscription re-bases through a resync (possibly rewinding the
// epoch) and keeps tracking fresh executes.
func TestInvalidateStoreResync(t *testing.T) {
	e := newTestEngine(t, testCols(3, 250, 14), core.Options{Granules: 6, K: 8, Reducers: 3})
	m := NewManager(e, Options{})
	defer m.Close()
	q := query.Qbb(query.Env{Params: scoring.P1})

	sub, err := m.Subscribe(context.Background(), q, 8, SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	tk := NewTopK(8)
	waitEpoch(t, sub, tk, 0)

	rng := rand.New(rand.NewSource(9))
	var counter int64
	epoch, err := e.Append(0, randBatch(rng, 0, 6, &counter))
	if err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, sub, tk, epoch)

	e.InvalidateStore() // epoch sequence restarts at 0
	m.Quiesce()
	// The pushed state must land back on the rebuilt store's epoch; the
	// consumer sees it as a resync.
	want, fe := freshResults(t, e, q, identity(3), 8)
	sawResync := false
	deadline := time.After(30 * time.Second)
	for tk.Epoch != fe || !sawResync {
		select {
		case d, ok := <-sub.Deltas():
			if !ok {
				t.Fatalf("channel closed: %v", sub.Err())
			}
			if d.Resync {
				sawResync = true
			}
			if err := tk.Apply(d); err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatalf("no resync after InvalidateStore (epoch %d, want %d)", tk.Epoch, fe)
		}
	}
	requireSameResults(t, "after rebuild", tk.Results, want)
	if st := m.Stats(); st.Resyncs == 0 {
		t.Fatalf("rebuild did not resync: %+v", st)
	}
}

// TestSlowSubscriber: an undrained subscription coalesces pending
// deltas into one resync instead of growing its queue or blocking
// Append; draining after the fact re-bases it to the current state.
func TestSlowSubscriber(t *testing.T) {
	e := newTestEngine(t, testCols(3, 250, 15), core.Options{Granules: 6, K: 8, Reducers: 3})
	m := NewManager(e, Options{})
	defer m.Close()
	q := query.Qbb(query.Env{Params: scoring.P1})

	sub, err := m.Subscribe(context.Background(), q, 8, SubOptions{Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Do not drain: every push past the 1-slot queue must coalesce.
	rng := rand.New(rand.NewSource(10))
	var counter int64
	var last int64
	for i := 0; i < 12; i++ {
		col := i % 2
		last, err = e.Append(col, randBatch(rng, col, 4, &counter))
		if err != nil {
			t.Fatal(err)
		}
		m.Quiesce() // server-side push completes without any draining
	}

	tk := NewTopK(8)
	waitEpoch(t, sub, tk, last)
	want, _ := freshResults(t, e, q, identity(3), 8)
	requireEquivalent(t, "after lag", q, tk.Results, want)
}

// TestSubscriptionLifecycle: ctx cancellation and Close both end the
// subscription, close its channel and deregister it.
func TestSubscriptionLifecycle(t *testing.T) {
	e := newTestEngine(t, testCols(3, 150, 16), core.Options{Granules: 5, K: 5, Reducers: 2})
	m := NewManager(e, Options{})
	defer m.Close()
	q := query.Qbb(query.Env{Params: scoring.P1})

	ctx, cancel := context.WithCancel(context.Background())
	sub, err := m.Subscribe(ctx, q, 5, SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	for range sub.Deltas() {
	}
	if err := sub.Err(); err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled subscription Err = %v", err)
	}

	sub2, err := m.Subscribe(context.Background(), q, 5, SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sub2.Close()
	sub2.Close() // idempotent
	for range sub2.Deltas() {
	}
	if err := sub2.Err(); err != nil {
		t.Fatalf("clean close Err = %v", err)
	}

	m.Close()
	if _, err := m.Subscribe(context.Background(), q, 5, SubOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe after Close = %v", err)
	}
}

// TestManagerCloseClosesChannels: Close terminates live subscriptions
// cleanly and leaves zero live store views.
func TestManagerCloseClosesChannels(t *testing.T) {
	e := newTestEngine(t, testCols(3, 150, 17), core.Options{Granules: 5, K: 5, Reducers: 2})
	m := NewManager(e, Options{})
	q := query.Qbb(query.Env{Params: scoring.P1})

	subs := make([]*Subscription, 3)
	for i := range subs {
		s, err := m.Subscribe(context.Background(), q, 5, SubOptions{})
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}
	m.Close()
	for _, s := range subs {
		for range s.Deltas() {
		}
		if err := s.Err(); err != nil {
			t.Fatalf("manager close terminated with %v", err)
		}
	}
	if vs := e.Store().ViewStats(); vs.Live != 0 {
		t.Fatalf("%d live store views after Close", vs.Live)
	}
}
