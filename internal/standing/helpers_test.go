package standing

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"tkij/internal/core"
	"tkij/internal/interval"
	"tkij/internal/join"
	"tkij/internal/query"
)

// testCols builds n synthetic collections of perCol intervals each,
// deterministic in seed. IDs are globally unique (colIdx*1_000_000 + j)
// as the tie-break contract requires.
func testCols(n, perCol int, seed int64) []*interval.Collection {
	rng := rand.New(rand.NewSource(seed))
	cols := make([]*interval.Collection, n)
	for i := range cols {
		c := &interval.Collection{Name: "C"}
		for j := 0; j < perCol; j++ {
			s := rng.Int63n(3000)
			c.Add(interval.Interval{ID: int64(i*1_000_000 + j), Start: s, End: s + 1 + rng.Int63n(90)})
		}
		cols[i] = c
	}
	return cols
}

// randBatch builds a batch of appended intervals with IDs disjoint from
// testCols (col*1_000_000 + 500_000 + counter).
func randBatch(rng *rand.Rand, col, n int, counter *int64) []interval.Interval {
	ivs := make([]interval.Interval, n)
	for i := range ivs {
		*counter++
		s := rng.Int63n(3200)
		ivs[i] = interval.Interval{
			ID:    int64(col)*1_000_000 + 500_000 + *counter,
			Start: s,
			End:   s + 1 + rng.Int63n(90),
		}
	}
	return ivs
}

// waitEpoch drains sub's delta channel through tk until the
// materialized state reaches epoch, failing the test on a malformed
// delta, a closed channel, or a timeout.
func waitEpoch(t *testing.T, sub *Subscription, tk *TopK, epoch int64) {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for tk.Seq == 0 || tk.Epoch < epoch {
		select {
		case d, ok := <-sub.Deltas():
			if !ok {
				t.Fatalf("delta channel closed waiting for epoch %d (err: %v)", epoch, sub.Err())
			}
			if err := tk.Apply(d); err != nil {
				t.Fatalf("apply delta seq %d: %v", d.Seq, err)
			}
		case <-deadline:
			t.Fatalf("timed out waiting for epoch %d (at %d)", epoch, tk.Epoch)
		}
	}
}

// freshResults executes (q, mapping, k) fresh at the engine's current
// epoch and returns the results and the pinned epoch.
func freshResults(t *testing.T, e *core.Engine, q *query.Query, mapping []int, k int) ([]join.Result, int64) {
	t.Helper()
	pin, err := e.Pin()
	if err != nil {
		t.Fatal(err)
	}
	defer pin.Release()
	rep, err := e.ExecutePinnedK(context.Background(), q, mapping, pin, k)
	if err != nil {
		t.Fatal(err)
	}
	return rep.Results, pin.Epoch()
}

// requireSameResults fails unless got and want are byte-identical
// result lists (same tuples, same order, same scores).
func requireSameResults(t *testing.T, label string, got, want []join.Result) {
	t.Helper()
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: materialized top-k diverges from fresh execute\n got: %v\nwant: %v", label, got, want)
	}
}

// requireEquivalent fails unless got and want are the same top-k up to
// ties at the k-th score: identical lengths and score multisets,
// byte-identical strictly above the floor, and every differing at-floor
// member genuinely scoring the floor under q. This is the strongest
// membership claim the pipeline makes across different plan states —
// even two fresh executes (cold plan vs revalidated plan) can return
// different-but-equally-valid members tied exactly at the k-th score,
// because floor-tied tuples in pruned combinations (UB == floor) are
// free to be either side of the cut.
func requireEquivalent(t *testing.T, label string, q *query.Query, got, want []join.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, fresh execute has %d", label, len(got), len(want))
	}
	if !join.ScoreMultisetEqual(got, want, 1e-9) {
		t.Fatalf("%s: score multiset diverges from fresh execute\n got: %v\nwant: %v", label, got, want)
	}
	if len(want) == 0 {
		return
	}
	floor := want[len(want)-1].Score
	for i := range got {
		if reflect.DeepEqual(got[i], want[i]) {
			continue
		}
		if got[i].Score > floor+1e-9 || want[i].Score > floor+1e-9 {
			t.Fatalf("%s: result %d differs above the floor %v\n got: %v\nwant: %v",
				label, i, floor, got[i], want[i])
		}
		if s := q.Score(got[i].Tuple); s-got[i].Score > 1e-9 || got[i].Score-s > 1e-9 {
			t.Fatalf("%s: at-floor member %v claims score %v, rescores to %v", label, got[i].Tuple, got[i].Score, s)
		}
	}
}

// identity returns the identity mapping for n vertices.
func identity(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}
