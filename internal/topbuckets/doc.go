// Package topbuckets implements TKIJ's online pruning phase (§3.3 of
// the paper): it enumerates bucket combinations, computes their score
// bounds with the solver, and selects the Top Buckets set Ω_k,S — a
// subset of the search space guaranteed to contain the exact top-k
// results (Definition 2).
//
// Paper concepts:
//
//   - A Combo is one bucket combination ω = (b_1, ..., b_n), one bucket
//     per query vertex, carrying its score bounds [LB, UB]
//     (Definition 1) and candidate-result count ω.nbRes.
//   - Selection (Algorithm 1, getTopBuckets) computes kthResLB — the
//     certified lower bound on the k-th result's score — and keeps
//     every combination whose UB clears it; see select.go for the
//     streaming, tie-robust formulation.
//   - The three bound strategies of Algorithm 2 are provided:
//     brute-force (tight solver bounds on every combination), loose
//     (per-edge pair bounds aggregated through the monotone scoring
//     function — the paper's choice, §4.2.3) and two-phase (loose
//     pruning, then tight refinement of the survivors).
//
// The bounds attached to a Result are a *certificate*, not just a
// heuristic: every pruned combination has UB <= KthResLB while the
// selected set carries at least k results with LB >= KthResLB. That is
// what lets the join phase use KthResLB as a score floor — and what
// lets the plan cache (internal/plancache) keep a selected set alive
// across append-only epoch bumps, re-bounding only the combinations an
// epoch touched: Combo.Touches identifies them, EnumerateAffected /
// CountAffected walk exactly the affected region of Ω, and
// TightenBounds recomputes safe bounds for a patch set in parallel.
package topbuckets
