package topbuckets

import (
	"tkij/internal/query"
	"tkij/internal/solver"
	"tkij/internal/stats"
)

// LooseBounder memoizes the loose strategy's per-edge bucket-pair solver
// bounds across epochs. Pair bounds depend only on granule boxes — never
// on bucket counts — so under the append-only epoch model a cached bound
// stays valid until its bucket's box changes shape (the bucket is new,
// or a boundary granule widened under an out-of-range append). Callers
// Invalidate exactly those buckets each epoch and keep everything else,
// which makes repeated bounding over a largely-unchanged granulation a
// pure table lookup: the standing layer's per-append re-probe bounds its
// affected combinations this way instead of re-running the tight solver
// over each one. Bounds are loose in the Algorithm-2 sense (per-edge
// bounds aggregated through the monotone scoring function) and therefore
// always safe for pruning. Not safe for concurrent use.
type LooseBounder struct {
	q        *query.Query
	opts     Options
	tables   []map[pairKey]pairBound // one per query edge
	lbs, ubs []float64               // aggregation scratch
	// Solved counts pair-solver calls since construction (cache misses).
	Solved int
}

// NewLooseBounder returns an empty bounder for q; opts supplies the
// pair-solver tuning (the strategy field is ignored — a bounder is
// always loose).
func NewLooseBounder(q *query.Query, opts Options) *LooseBounder {
	b := &LooseBounder{
		q:      q,
		opts:   opts.withDefaults(),
		tables: make([]map[pairKey]pairBound, len(q.Edges)),
		lbs:    make([]float64, len(q.Edges)),
		ubs:    make([]float64, len(q.Edges)),
	}
	for i := range b.tables {
		b.tables[i] = make(map[pairKey]pairBound)
	}
	return b
}

// Invalidate drops every cached pair bound touching a bucket for which
// affected reports true (vertex-indexed, like EpochDiff.ShapeAffected).
// lists are the current per-vertex bucket lists the affected predicate
// is defined over.
func (b *LooseBounder) Invalidate(lists [][]stats.Bucket, affected func(v int, bk stats.Bucket) bool) {
	stale := make([]map[stats.BucketKey]bool, len(lists))
	for v, list := range lists {
		for _, bk := range list {
			if affected(v, bk) {
				if stale[v] == nil {
					stale[v] = make(map[stats.BucketKey]bool)
				}
				stale[v][bk.Key()] = true
			}
		}
	}
	for ei, e := range b.q.Edges {
		from, to := stale[e.From], stale[e.To]
		if from == nil && to == nil {
			continue
		}
		for k := range b.tables[ei] {
			if from[k.from] || to[k.to] {
				delete(b.tables[ei], k)
			}
		}
	}
}

// Reset drops the entire cache — required after any transition outside
// the append-only model (granulation swap, store rebuild), where bucket
// keys may alias entirely different boxes.
func (b *LooseBounder) Reset() {
	for i := range b.tables {
		b.tables[i] = make(map[pairKey]pairBound)
	}
}

// Bound returns loose (lb, ub) for the combination given by buckets
// (indexed by query vertex, like a Combo's), solving and memoizing any
// missing pair bounds against the current matrices.
func (b *LooseBounder) Bound(matrices []*stats.Matrix, buckets []stats.Bucket) (float64, float64) {
	for ei, e := range b.q.Edges {
		key := pairKey{buckets[e.From].Key(), buckets[e.To].Key()}
		pb, ok := b.tables[ei][key]
		if !ok {
			bf, bt := buckets[e.From], buckets[e.To]
			sLo, sHi, eLo, eHi := matrices[e.From].Box(bf.StartG, bf.EndG)
			fromBox := solver.VertexBox{StartLo: sLo, StartHi: sHi, EndLo: eLo, EndHi: eHi}
			sLo, sHi, eLo, eHi = matrices[e.To].Box(bt.StartG, bt.EndG)
			toBox := solver.VertexBox{StartLo: sLo, StartHi: sHi, EndLo: eLo, EndHi: eHi}
			lb, ub := solver.PredicateBounds(e.Pred, fromBox, toBox, b.opts.PairSolver)
			pb = pairBound{lb, ub}
			b.tables[ei][key] = pb
			b.Solved++
		}
		b.lbs[ei], b.ubs[ei] = pb.lb, pb.ub
	}
	return b.q.Agg.Aggregate(b.lbs), b.q.Agg.Aggregate(b.ubs)
}
