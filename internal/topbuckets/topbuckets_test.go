package topbuckets

import (
	"math/rand"
	"sort"
	"testing"

	"tkij/internal/interval"
	"tkij/internal/mapreduce"
	"tkij/internal/query"
	"tkij/internal/scoring"
	"tkij/internal/stats"
)

func mkCombo(lb, ub, nbRes float64, id int) Combo {
	return Combo{
		Buckets: []stats.Bucket{{Col: 0, StartG: id, EndG: id, Count: int(nbRes)}},
		LB:      lb, UB: ub, NbRes: nbRes,
	}
}

// Definition 2: for every pruned combination ω there must be selected
// combinations with LB >= ω.UB totalling at least k results.
func checkDefinition2(t *testing.T, k int, all, selected []Combo) {
	t.Helper()
	sel := make(map[string]bool, len(selected))
	for _, c := range selected {
		sel[c.key()] = true
	}
	for _, w := range all {
		if sel[w.key()] {
			continue
		}
		var covered float64
		for _, s := range selected {
			if s.LB >= w.UB {
				covered += s.NbRes
			}
		}
		if covered < float64(k) {
			t.Fatalf("pruned combo (UB=%g) lacks certificate: only %g results with LB >= UB in Ωk,S (k=%d)", w.UB, covered, k)
		}
	}
}

func TestSelectListDefinition2Random(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(50)
		n := 1 + rng.Intn(60)
		all := make([]Combo, n)
		for i := range all {
			ub := rng.Float64()
			lb := ub * rng.Float64()
			all[i] = mkCombo(lb, ub, float64(1+rng.Intn(30)), i)
		}
		selected := SelectList(k, all)
		checkDefinition2(t, k, all, selected)
	}
}

func TestSelectListSingleDominantCombo(t *testing.T) {
	// The Qb,b situation: one combination with LB = UB = 1 holding far
	// more than k results must suffice alone.
	all := []Combo{
		mkCombo(1, 1, 1e6, 0),
		mkCombo(0.2, 0.9, 1e6, 1),
		mkCombo(0.1, 0.8, 1e6, 2),
	}
	selected := SelectList(100, all)
	if len(selected) != 1 {
		t.Fatalf("selected %d combos, want 1 (the dominant one)", len(selected))
	}
	if selected[0].LB != 1 {
		t.Fatalf("selected wrong combo: %+v", selected[0])
	}
	checkDefinition2(t, 100, all, selected)
}

func TestSelectListTieAtThreshold(t *testing.T) {
	// Saturated scores: several combos with UB = 1 but differing LB.
	// The LB cover must be selected, not arbitrary UB-tied filler.
	all := []Combo{
		mkCombo(1, 1, 50, 0), // certificate combo
		mkCombo(0, 1, 50, 1), // same UB, useless LB
		mkCombo(0, 1, 50, 2),
		mkCombo(0.5, 0.6, 10, 3),
	}
	selected := SelectList(40, all)
	checkDefinition2(t, 40, all, selected)
	found := false
	for _, c := range selected {
		if c.LB == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("LB=1 certificate combo not selected")
	}
}

func TestSelectListFewerThanKResults(t *testing.T) {
	all := []Combo{mkCombo(0.9, 1, 3, 0), mkCombo(0.1, 0.5, 2, 1)}
	selected := SelectList(100, all)
	// Everything must be kept: we cannot certify pruning anything.
	if len(selected) != 2 {
		t.Fatalf("selected %d, want 2", len(selected))
	}
}

func TestStreamSelectorMatchesSelectList(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(40)
		n := 1 + rng.Intn(80)
		all := make([]Combo, n)
		for i := range all {
			ub := float64(rng.Intn(11)) / 10 // coarse scores force ties
			lb := ub * float64(rng.Intn(11)) / 10
			all[i] = mkCombo(lb, ub, float64(1+rng.Intn(20)), i)
		}
		want := SelectList(k, all)
		s := newStreamSelector(k)
		for _, c := range all {
			s.observe(c)
		}
		s.beginPick()
		for _, c := range all {
			s.pick(c)
		}
		got := s.finalize()
		if len(got) != len(want) {
			t.Fatalf("stream selected %d, list selected %d (k=%d)", len(got), len(want), k)
		}
		for i := range got {
			if got[i].key() != want[i].key() {
				t.Fatalf("selection mismatch at %d", i)
			}
		}
	}
}

// --- strategy tests over real data ---

func synthCollections(n int, perCol int, seed int64) []*interval.Collection {
	rng := rand.New(rand.NewSource(seed))
	cols := make([]*interval.Collection, n)
	for i := range cols {
		c := &interval.Collection{Name: "C"}
		for j := 0; j < perCol; j++ {
			s := rng.Int63n(10000)
			c.Add(interval.Interval{ID: int64(j), Start: s, End: s + 1 + rng.Int63n(99)})
		}
		cols[i] = c
	}
	return cols
}

func matricesFor(t *testing.T, cols []*interval.Collection, g int) []*stats.Matrix {
	t.Helper()
	ms, _, err := stats.Collect(cols, g, mapreduce.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

// Every strategy must select a set that covers the exhaustive top-k: for
// each of the true top-k tuples, the combination containing it must be
// selected.
func TestStrategiesCoverExhaustiveTopK(t *testing.T) {
	cols := synthCollections(2, 60, 3)
	ms := matricesFor(t, cols, 6)
	pp := scoring.P1
	q := query.MustNew("pair", 2, []query.Edge{{From: 0, To: 1, Pred: scoring.Meets(pp)}}, scoring.Avg{})
	const k = 25

	// Exhaustive scoring.
	type scored struct {
		score float64
		b0    stats.BucketKey
		b1    stats.BucketKey
	}
	var allResults []scored
	for _, x := range cols[0].Items {
		for _, y := range cols[1].Items {
			l0, lp0 := ms[0].Gran.BucketOf(x)
			l1, lp1 := ms[1].Gran.BucketOf(y)
			allResults = append(allResults, scored{
				score: q.Score([]interval.Interval{x, y}),
				b0:    stats.BucketKey{Col: 0, StartG: l0, EndG: lp0},
				b1:    stats.BucketKey{Col: 1, StartG: l1, EndG: lp1},
			})
		}
	}
	sort.Slice(allResults, func(i, j int) bool { return allResults[i].score > allResults[j].score })

	for _, strat := range []Strategy{Loose, BruteForce, TwoPhase} {
		res, err := Run(q, ms, k, Options{Strategy: strat})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		selected := make(map[[2]stats.BucketKey]bool)
		for _, c := range res.Selected {
			selected[[2]stats.BucketKey{c.Buckets[0].Key(), c.Buckets[1].Key()}] = true
		}
		// Any result strictly better than the (k+1)-th score must be in a
		// selected combo; ties at the k-th score are interchangeable.
		kth := allResults[k-1].score
		for i := 0; i < k; i++ {
			r := allResults[i]
			if r.score > kth || (r.score == kth && i < k) {
				if r.score > kth && !selected[[2]stats.BucketKey{r.b0, r.b1}] {
					t.Fatalf("%s: top-%d result (score %g) in pruned combo", strat, i+1, r.score)
				}
			}
		}
		// Count coverage: at least k results with score >= kth must be
		// inside selected combos.
		covered := 0
		for _, r := range allResults {
			if r.score >= kth && selected[[2]stats.BucketKey{r.b0, r.b1}] {
				covered++
			}
		}
		if covered < k {
			t.Fatalf("%s: only %d results with score >= kth covered, want >= %d", strat, covered, k)
		}
		if res.PrunedFraction() < 0 || res.PrunedFraction() > 1 {
			t.Fatalf("%s: pruned fraction %g", strat, res.PrunedFraction())
		}
	}
}

// brute-force bounds must never be looser than loose bounds, and
// two-phase must agree with brute-force on tight bounds (Figure 6).
func TestLooseVsTightBounds(t *testing.T) {
	cols := synthCollections(3, 50, 7)
	ms := matricesFor(t, cols, 4)
	env := query.Env{Params: scoring.P1}
	q := query.Qss(env)
	const k = 10

	loose, err := Run(q, ms, k, Options{Strategy: Loose})
	if err != nil {
		t.Fatal(err)
	}
	brute, err := Run(q, ms, k, Options{Strategy: BruteForce})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Run(q, ms, k, Options{Strategy: TwoPhase})
	if err != nil {
		t.Fatal(err)
	}
	if loose.PairSolverCalls == 0 || brute.TightSolverCalls == 0 || two.TightSolverCalls == 0 {
		t.Fatal("solver call counters not maintained")
	}
	// Index loose bounds by combo identity.
	looseUB := make(map[string]float64)
	for _, c := range loose.Selected {
		looseUB[c.key()] = c.UB
	}
	for _, c := range brute.Selected {
		if lu, ok := looseUB[c.key()]; ok && c.UB > lu+1e-9 {
			t.Fatalf("tight UB %g exceeds loose UB %g", c.UB, lu)
		}
	}
	// two-phase refines: selected results never exceed loose's.
	if two.SelectedResults > loose.SelectedResults+1e-9 {
		t.Fatalf("two-phase selected %g results, loose %g — refinement should not grow the set",
			two.SelectedResults, loose.SelectedResults)
	}
}

func TestRunErrors(t *testing.T) {
	cols := synthCollections(2, 20, 1)
	ms := matricesFor(t, cols, 3)
	q := query.MustNew("pair", 2, []query.Edge{{From: 0, To: 1, Pred: scoring.Before(scoring.P1)}}, scoring.Avg{})
	if _, err := Run(q, ms, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Run(q, ms[:1], 5, Options{}); err == nil {
		t.Error("matrix count mismatch accepted")
	}
	if _, err := Run(q, ms, 5, Options{Strategy: BruteForce, MaxCombos: 1}); err == nil {
		t.Error("MaxCombos guard did not fire")
	}
	if _, err := Run(q, ms, 5, Options{Strategy: Strategy(42)}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestStrategyString(t *testing.T) {
	if Loose.String() != "loose" || BruteForce.String() != "brute-force" || TwoPhase.String() != "two-phase" {
		t.Error("strategy names wrong")
	}
}

func TestEnumerateOrderAndCount(t *testing.T) {
	lists := [][]stats.Bucket{
		{{Col: 0, StartG: 0}, {Col: 0, StartG: 1}},
		{{Col: 1, StartG: 0}, {Col: 1, StartG: 1}, {Col: 1, StartG: 2}},
	}
	var seen [][2]int
	err := enumerate(lists, func(bs []stats.Bucket) error {
		seen = append(seen, [2]int{bs[0].StartG, bs[1].StartG})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 6 {
		t.Fatalf("enumerated %d, want 6", len(seen))
	}
	want := [][2]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("order mismatch at %d: %v", i, seen)
		}
	}
	if got := comboCount(lists); got != 6 {
		t.Errorf("comboCount = %g", got)
	}
}
