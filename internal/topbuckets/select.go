package topbuckets

import (
	"container/heap"
	"sort"
)

// This file implements the Top Buckets selection of Algorithm 1
// (getTopBuckets) in an order-insensitive, streaming form.
//
// Algorithm 1 computes kthResLB — a lower bound on the score of the k-th
// result — as the LB of the combination at which the cumulative result
// count of combinations, visited in descending-LB order, first reaches
// k. Equivalently (and independent of visit order):
//
//	kthResLB = max { t : Σ_{ω : ω.LB >= t} ω.nbRes >= k }
//
// It then keeps combinations whose UB clears that threshold.
//
// Two deliberate deviations from the printed pseudo-code, both noted in
// DESIGN.md:
//
//  1. Streaming. Ω is O(g^2n) and is never materialized; a bounded
//     min-heap retains just the descending-LB prefix covering k results,
//     and selection is a second streaming pass. Results are identical.
//  2. Tie correctness. The printed algorithm fills the selection in
//     descending-UB order until k results are collected, which under
//     score ties (UB == kthResLB but LB < kthResLB, common when scores
//     saturate at 1.0) can retain filler combinations while pruning the
//     very combinations whose LB established the threshold — breaking
//     Definition 2. We instead select {ω : ω.UB > kthResLB} ∪ H, where
//     H is the minimal descending-LB cover of k results (the set that
//     defined kthResLB). Every pruned ω then has UB <= kthResLB and H
//     certifies it: ∀ω' ∈ H, ω'.LB >= kthResLB >= ω.UB and
//     Σ_{H} nbRes >= k. This preserves the paper's observed behaviour
//     (e.g. a single combination selected for Qb,b) while making the
//     exactness guarantee robust to ties.

// lbCover is a min-heap over (LB, nbRes) retaining the minimal
// descending-LB set of combinations covering at least k results.
type lbCover struct {
	k     float64
	total float64
	items lbHeap
}

type lbItem struct {
	lb    float64
	nbRes float64
	combo Combo
}

type lbHeap []lbItem

func (h lbHeap) Len() int            { return len(h) }
func (h lbHeap) Less(i, j int) bool  { return h[i].lb < h[j].lb }
func (h lbHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *lbHeap) Push(x interface{}) { *h = append(*h, x.(lbItem)) }
func (h *lbHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

func newLBCover(k int) *lbCover { return &lbCover{k: float64(k)} }

// add offers one combination to the cover.
func (c *lbCover) add(cb Combo) {
	heap.Push(&c.items, lbItem{lb: cb.LB, nbRes: cb.NbRes, combo: cb})
	c.total += cb.NbRes
	for len(c.items) > 1 && c.total-c.items[0].nbRes >= c.k {
		c.total -= c.items[0].nbRes
		heap.Pop(&c.items)
	}
}

// threshold returns kthResLB: the minimum LB in the cover. When fewer
// than k results exist in total it degrades to the overall minimum LB,
// mirroring Algorithm 1's loop running to completion.
func (c *lbCover) threshold() float64 {
	if len(c.items) == 0 {
		return 0
	}
	return c.items[0].lb
}

// cover returns the covered combinations (H) in descending-LB order.
func (c *lbCover) cover() []Combo {
	out := make([]Combo, len(c.items))
	for i, it := range c.items {
		out[i] = it.combo
	}
	sortCombos(out, func(a, b Combo) bool { return a.LB > b.LB })
	return out
}

// sortCombos sorts with a deterministic tie-break on bucket identity.
func sortCombos(cs []Combo, less func(a, b Combo) bool) {
	sort.Slice(cs, func(i, j int) bool {
		if less(cs[i], cs[j]) {
			return true
		}
		if less(cs[j], cs[i]) {
			return false
		}
		return cs[i].key() < cs[j].key()
	})
}

// SelectList runs Top Buckets selection over a materialized combination
// list (the brute-force and two-phase paths, and tests). It returns
// Ω_k,S sorted by descending UB.
func SelectList(k int, combos []Combo) []Combo {
	selected, _ := SelectWithThreshold(k, combos)
	return selected
}

// SelectWithThreshold is SelectList additionally returning kthResLB —
// the certified lower bound on the k-th result's score. The join phase
// uses it as a score floor: no result below it can reach the top-k.
func SelectWithThreshold(k int, combos []Combo) ([]Combo, float64) {
	cover := newLBCover(k)
	for _, c := range combos {
		cover.add(c)
	}
	t := cover.threshold()
	selected := make([]Combo, 0, 16)
	seen := make(map[string]bool)
	for _, c := range cover.cover() {
		selected = append(selected, c)
		seen[c.key()] = true
	}
	for _, c := range combos {
		if c.UB > t && !seen[c.key()] {
			selected = append(selected, c)
			seen[c.key()] = true
		}
	}
	sortCombos(selected, func(a, b Combo) bool { return a.UB > b.UB })
	return selected, t
}

// streamSelector performs the same selection over a two-pass stream:
// pass one feeds every combination to observe, pass two feeds every
// combination to pick, and finalize returns Ω_k,S. The two passes must
// present the same combinations (bounds may be recomputed).
type streamSelector struct {
	k     int
	cover *lbCover
	t     float64
	// pass-two state
	selected []Combo
	seen     map[string]bool
}

func newStreamSelector(k int) *streamSelector {
	return &streamSelector{k: k, cover: newLBCover(k)}
}

// observe is pass one: accumulate the LB cover.
func (s *streamSelector) observe(c Combo) { s.cover.add(c) }

// beginPick freezes the threshold and seeds the selection with H.
func (s *streamSelector) beginPick() {
	s.t = s.cover.threshold()
	s.seen = make(map[string]bool)
	for _, c := range s.cover.cover() {
		s.selected = append(s.selected, c)
		s.seen[c.key()] = true
	}
}

// pick is pass two: keep every combination clearing the threshold.
func (s *streamSelector) pick(c Combo) {
	if c.UB > s.t {
		if key := c.key(); !s.seen[key] {
			s.selected = append(s.selected, c)
			s.seen[key] = true
		}
	}
}

// finalize returns Ω_k,S sorted by descending UB.
func (s *streamSelector) finalize() []Combo {
	sortCombos(s.selected, func(a, b Combo) bool { return a.UB > b.UB })
	return s.selected
}
