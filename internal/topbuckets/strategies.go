package topbuckets

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tkij/internal/query"
	"tkij/internal/solver"
	"tkij/internal/stats"
)

// Strategy selects how score bounds are computed (§3.3, Algorithm 2).
type Strategy int

// The three TopBuckets strategies.
const (
	// Loose computes solver bounds only for bucket pairs (4 variables,
	// O(|E|·g^4) solver calls) and aggregates them through the monotone
	// scoring function. Bounds may be loose; selection stays correct.
	// The paper's evaluation settles on this strategy (§4.2.3).
	Loose Strategy = iota
	// BruteForce computes tight solver bounds for every combination in
	// Ω (2n variables each); O(g^2n) solver calls.
	BruteForce
	// TwoPhase prunes with loose bounds first, then refines the
	// survivors with tight bounds and selects again.
	TwoPhase
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Loose:
		return "loose"
	case BruteForce:
		return "brute-force"
	case TwoPhase:
		return "two-phase"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Options configures a TopBuckets run.
type Options struct {
	Strategy Strategy
	// Workers is the number of parallel bound-computation workers
	// (the paper shards TopBuckets over its 6 cluster workers).
	// Defaults to GOMAXPROCS.
	Workers int
	// PairSolver tunes the 4-variable pair optimizations (loose and the
	// first phase of two-phase).
	PairSolver solver.Options
	// TightSolver tunes the 2n-variable combination optimizations
	// (brute-force and the second phase of two-phase).
	TightSolver solver.Options
	// MaxCombos guards materializing paths (brute-force, two-phase
	// survivor refinement) against combinatorial explosion. Defaults to
	// 2e6.
	MaxCombos float64
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.PairSolver.MaxNodes == 0 {
		o.PairSolver.MaxNodes = 512
	}
	if o.PairSolver.Eps == 0 {
		o.PairSolver.Eps = 1e-3
	}
	// Tight bounds only drive pruning decisions; 1e-3 accuracy is ample
	// and keeps branch-and-bound off the flat plateaus of equals-based
	// predicates, where 1e-6 convergence costs milliseconds per call.
	if o.TightSolver.MaxNodes == 0 {
		o.TightSolver.MaxNodes = 512
	}
	if o.TightSolver.Eps == 0 {
		o.TightSolver.Eps = 1e-3
	}
	if o.MaxCombos <= 0 {
		o.MaxCombos = 2e6
	}
	return o
}

// Result is the outcome of a TopBuckets run.
type Result struct {
	// Selected is Ω_k,S, sorted by descending score upper bound — the
	// access order the join phase uses.
	Selected []Combo
	// TotalCombos is |Ω|.
	TotalCombos float64
	// TotalResults is the number of candidate tuples in Ω.
	TotalResults float64
	// SelectedResults is the number of candidate tuples in Ω_k,S.
	SelectedResults float64
	// PairSolverCalls and TightSolverCalls count bound optimizations.
	PairSolverCalls  int
	TightSolverCalls int
	// KthResLB is the certified lower bound on the k-th result's score
	// (Algorithm 1's kthResLB). The join phase uses it as a score floor.
	KthResLB float64
	// PairPhase, EnumPhase and RefinePhase time the strategy stages.
	PairPhase, EnumPhase, RefinePhase time.Duration
	// Total is the end-to-end TopBuckets wall time.
	Total time.Duration
}

// PrunedFraction is the share of candidate results eliminated before the
// join phase (the grey curve of Figure 10c).
func (r *Result) PrunedFraction() float64 {
	if r.TotalResults == 0 {
		return 0
	}
	return 1 - r.SelectedResults/r.TotalResults
}

// Run executes the TopBuckets process for query q over the statistics
// matrices, returning Ω_k,S per Definition 2.
func Run(q *query.Query, matrices []*stats.Matrix, k int, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	lists, err := validateInputs(q, matrices, k)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	var res *Result
	switch opts.Strategy {
	case Loose:
		res, err = runLoose(q, matrices, lists, k, opts, false)
	case BruteForce:
		res, err = runBruteForce(q, matrices, lists, k, opts)
	case TwoPhase:
		res, err = runLoose(q, matrices, lists, k, opts, true)
	default:
		return nil, fmt.Errorf("topbuckets: unknown strategy %d", int(opts.Strategy))
	}
	if err != nil {
		return nil, err
	}
	res.Total = time.Since(start)
	return res, nil
}

// pairKey identifies a bucket pair within one edge's bound table.
type pairKey struct {
	from, to stats.BucketKey
}

// pairBound holds solver bounds for one bucket pair.
type pairBound struct {
	lb, ub float64
}

// computePairBounds builds, for every query edge, the bound table over
// all bucket pairs of its two collections (lines 1-3 of Algorithm 2),
// parallelized across workers.
func computePairBounds(q *query.Query, matrices []*stats.Matrix, lists [][]stats.Bucket, opts Options) ([]map[pairKey]pairBound, int) {
	tables := make([]map[pairKey]pairBound, len(q.Edges))
	calls := 0
	for ei, e := range q.Edges {
		fromList, toList := lists[e.From], lists[e.To]
		table := make(map[pairKey]pairBound, len(fromList)*len(toList))
		type cell struct {
			key pairKey
			b   pairBound
		}
		out := make([]cell, len(fromList)*len(toList))
		var wg sync.WaitGroup
		chunk := (len(fromList) + opts.Workers - 1) / opts.Workers
		for w := 0; w < opts.Workers; w++ {
			lo := w * chunk
			if lo >= len(fromList) {
				break
			}
			hi := lo + chunk
			if hi > len(fromList) {
				hi = len(fromList)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					bi := fromList[i]
					sLo, sHi, eLo, eHi := matrices[e.From].Box(bi.StartG, bi.EndG)
					fromBox := solver.VertexBox{StartLo: sLo, StartHi: sHi, EndLo: eLo, EndHi: eHi}
					for j, bj := range toList {
						sLo, sHi, eLo, eHi := matrices[e.To].Box(bj.StartG, bj.EndG)
						toBox := solver.VertexBox{StartLo: sLo, StartHi: sHi, EndLo: eLo, EndHi: eHi}
						lb, ub := solver.PredicateBounds(e.Pred, fromBox, toBox, opts.PairSolver)
						out[i*len(toList)+j] = cell{key: pairKey{bi.Key(), bj.Key()}, b: pairBound{lb, ub}}
					}
				}
			}(lo, hi)
		}
		wg.Wait()
		for _, c := range out {
			table[c.key] = c.b
		}
		calls += len(out)
		tables[ei] = table
	}
	return tables, calls
}

// looseBounds aggregates per-edge pair bounds into combination bounds
// (lines 4-5 of Algorithm 2): by monotonicity of S, aggregating edge
// lower (resp. upper) bounds yields a valid combination lower (resp.
// upper) bound.
func looseBounds(q *query.Query, tables []map[pairKey]pairBound, buckets []stats.Bucket, lbs, ubs []float64) (lb, ub float64) {
	for ei, e := range q.Edges {
		pb := tables[ei][pairKey{buckets[e.From].Key(), buckets[e.To].Key()}]
		lbs[ei], ubs[ei] = pb.lb, pb.ub
	}
	return q.Agg.Aggregate(lbs), q.Agg.Aggregate(ubs)
}

// runLoose implements Algorithm 2. With refine=false it is the loose
// strategy (onePhase=true); with refine=true it is two-phase.
func runLoose(q *query.Query, matrices []*stats.Matrix, lists [][]stats.Bucket, k int, opts Options, refine bool) (*Result, error) {
	res := &Result{TotalCombos: comboCount(lists)}

	pairStart := time.Now()
	tables, calls := computePairBounds(q, matrices, lists, opts)
	res.PairSolverCalls = calls
	res.PairPhase = time.Since(pairStart)

	// The total candidate count is the product of collection sizes:
	// every tuple falls in exactly one bucket combination.
	res.TotalResults = 1
	for _, m := range matrices {
		res.TotalResults *= float64(m.Total())
	}

	// Streaming passes over Ω with cheap table-lookup bounds, sharded by
	// the first collection's buckets exactly as the paper's distributed
	// TopBuckets splits B_1 into worker groups (§4 "Selection of bucket
	// combinations"): each shard selects a locally sufficient set, and a
	// final SelectList over the union returns a globally valid Ω_k,S —
	// every shard's certificate survives into the union.
	enumStart := time.Now()
	shards := opts.Workers
	if shards > len(lists[0]) {
		shards = len(lists[0])
	}
	shardSel := make([][]Combo, shards)
	var wg sync.WaitGroup
	shardSize := (len(lists[0]) + shards - 1) / shards
	var firstErr error
	var errMu sync.Mutex
	for w := 0; w < shards; w++ {
		lo := w * shardSize
		if lo >= len(lists[0]) {
			break
		}
		hi := lo + shardSize
		if hi > len(lists[0]) {
			hi = len(lists[0])
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			shardLists := make([][]stats.Bucket, len(lists))
			copy(shardLists, lists)
			shardLists[0] = lists[0][lo:hi]
			sel := newStreamSelector(k)
			lbs := make([]float64, len(q.Edges))
			ubs := make([]float64, len(q.Edges))
			pass := func(fn func(Combo)) error {
				return enumerate(shardLists, func(buckets []stats.Bucket) error {
					lb, ub := looseBounds(q, tables, buckets, lbs, ubs)
					fn(Combo{Buckets: buckets, LB: lb, UB: ub, NbRes: nbRes(buckets)})
					return nil
				})
			}
			err := pass(func(c Combo) {
				c.Buckets = append([]stats.Bucket(nil), c.Buckets...)
				sel.observe(c)
			})
			if err == nil {
				sel.beginPick()
				err = pass(func(c Combo) {
					if c.UB > sel.t {
						c.Buckets = append([]stats.Bucket(nil), c.Buckets...)
						sel.pick(c)
					}
				})
			}
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			shardSel[w] = sel.finalize()
		}(w, lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	var union []Combo
	for _, s := range shardSel {
		union = append(union, s...)
	}
	selected, kthResLB := SelectWithThreshold(k, union)
	res.KthResLB = kthResLB
	res.EnumPhase = time.Since(enumStart)

	if refine {
		refineStart := time.Now()
		if float64(len(selected)) > opts.MaxCombos {
			return nil, fmt.Errorf("topbuckets: two-phase refinement over %d combinations exceeds MaxCombos %g", len(selected), opts.MaxCombos)
		}
		TightenBounds(q, matrices, selected, opts)
		res.TightSolverCalls = len(selected)
		selected, res.KthResLB = SelectWithThreshold(k, selected)
		res.RefinePhase = time.Since(refineStart)
	}

	res.Selected = selected
	for _, c := range selected {
		res.SelectedResults += c.NbRes
	}
	return res, nil
}

// runBruteForce materializes Ω with tight solver bounds for every
// combination, then selects.
func runBruteForce(q *query.Query, matrices []*stats.Matrix, lists [][]stats.Bucket, k int, opts Options) (*Result, error) {
	res := &Result{TotalCombos: comboCount(lists)}
	if res.TotalCombos > opts.MaxCombos {
		return nil, fmt.Errorf("topbuckets: brute-force over %g combinations exceeds MaxCombos %g (reduce g or use the loose strategy)", res.TotalCombos, opts.MaxCombos)
	}
	var combos []Combo
	if err := enumerate(lists, func(buckets []stats.Bucket) error {
		combos = append(combos, Combo{
			Buckets: append([]stats.Bucket(nil), buckets...),
			NbRes:   nbRes(buckets),
		})
		return nil
	}); err != nil {
		return nil, err
	}
	for _, c := range combos {
		res.TotalResults += c.NbRes
	}
	refineStart := time.Now()
	TightenBounds(q, matrices, combos, opts)
	res.TightSolverCalls = len(combos)
	res.RefinePhase = time.Since(refineStart)

	selStart := time.Now()
	res.Selected, res.KthResLB = SelectWithThreshold(k, combos)
	res.EnumPhase = time.Since(selStart)
	for _, c := range res.Selected {
		res.SelectedResults += c.NbRes
	}
	return res, nil
}

// TightenBounds recomputes tight solver bounds for every combination in
// place, in parallel, and returns the total branch-and-bound nodes
// opened (the solver-work certificate of the recomputation). It is the
// second phase of the two-phase strategy, the whole of brute-force —
// and the unit of work plan-cache revalidation applies to the
// combinations an epoch bump touched.
func TightenBounds(q *query.Query, matrices []*stats.Matrix, combos []Combo, opts Options) int {
	opts = opts.withDefaults()
	var wg sync.WaitGroup
	var nodes atomic.Int64
	chunk := (len(combos) + opts.Workers - 1) / opts.Workers
	for w := 0; w < opts.Workers; w++ {
		lo := w * chunk
		if lo >= len(combos) {
			break
		}
		hi := lo + chunk
		if hi > len(combos) {
			hi = len(combos)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			local := 0
			for i := lo; i < hi; i++ {
				boxes := boxesFor(matrices, combos[i].Buckets)
				var cert solver.Cert
				combos[i].LB, combos[i].UB, cert = solver.QueryBoundsCert(q, boxes, opts.TightSolver)
				local += cert.Nodes
			}
			nodes.Add(int64(local))
		}(lo, hi)
	}
	wg.Wait()
	return int(nodes.Load())
}
