package topbuckets

import (
	"sort"
	"testing"

	"tkij/internal/interval"
	"tkij/internal/query"
	"tkij/internal/scoring"
)

// The sharded loose enumeration (parallel over B_1 groups, as in the
// paper's distributed TopBuckets) must produce a selection with the same
// guarantees regardless of worker count: the kthResLB threshold must
// match, and the result sets must cover each other's certificates.
func TestShardedLooseConsistentAcrossWorkers(t *testing.T) {
	cols := synthCollections(3, 80, 19)
	ms := matricesFor(t, cols, 6)
	env := query.Env{Params: scoring.P1}
	q := query.Qom(env)
	const k = 20

	var baseline *Result
	for _, workers := range []int{1, 2, 5, 16} {
		res, err := Run(q, ms, k, Options{Strategy: Loose, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if baseline == nil {
			baseline = res
			continue
		}
		if res.KthResLB != baseline.KthResLB {
			t.Fatalf("workers=%d: kthResLB %g != %g", workers, res.KthResLB, baseline.KthResLB)
		}
		// Selections may differ in tie handling but must agree on size
		// within the UB==threshold tie class and on total guarantees.
		if res.SelectedResults < float64(k) && baseline.SelectedResults >= float64(k) {
			t.Fatalf("workers=%d: selection lost the k-result guarantee", workers)
		}
		// Every combination with UB above the threshold must be present
		// in both.
		want := make(map[string]bool)
		for _, c := range baseline.Selected {
			if c.UB > baseline.KthResLB {
				want[c.key()] = true
			}
		}
		got := make(map[string]bool)
		for _, c := range res.Selected {
			got[c.key()] = true
		}
		for key := range want {
			if !got[key] {
				t.Fatalf("workers=%d: above-threshold combination missing", workers)
			}
		}
	}
}

// KthResLB must be a valid lower bound on the true k-th score.
func TestKthResLBIsValidLowerBound(t *testing.T) {
	cols := synthCollections(2, 70, 37)
	ms := matricesFor(t, cols, 5)
	pp := scoring.P1
	q := query.MustNew("pair", 2, []query.Edge{{From: 0, To: 1, Pred: scoring.Overlaps(pp)}}, scoring.Avg{})
	const k = 15
	res, err := Run(q, ms, k, Options{Strategy: Loose})
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive k-th score.
	var scores []float64
	for _, x := range cols[0].Items {
		for _, y := range cols[1].Items {
			scores = append(scores, q.Score([]interval.Interval{x, y}))
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	kth := scores[k-1]
	if res.KthResLB > kth+1e-9 {
		t.Fatalf("kthResLB %g exceeds true k-th score %g", res.KthResLB, kth)
	}
}
