package topbuckets

import (
	"fmt"

	"tkij/internal/query"
	"tkij/internal/solver"
	"tkij/internal/stats"
)

// Combo is one bucket combination ω = (b_{1,l1,l1'}, ..., b_{n,ln,ln'})
// with its score bounds and result count ω.nbRes = Π |b_i|.
type Combo struct {
	// Buckets has one bucket per query vertex, Buckets[i] drawn from the
	// matrix of collection i.
	Buckets []stats.Bucket
	// LB and UB bound the aggregate score of every tuple drawn from the
	// combination (Definition 1).
	LB, UB float64
	// NbRes is the number of candidate tuples in the combination. It is
	// kept as float64 because products of bucket cardinalities overflow
	// int64 for large n (the paper reports >1e13 results per combination
	// at §4.2.6 scale).
	NbRes float64
}

// key returns a comparable identity for deduplication and deterministic
// tie-breaking.
func (c *Combo) key() string {
	// Buckets are small; a compact string key keeps this allocation-light
	// enough for selection-time use only (not the enumeration hot path).
	k := make([]byte, 0, len(c.Buckets)*6)
	for _, b := range c.Buckets {
		k = append(k, byte(b.Col), byte(b.StartG>>8), byte(b.StartG), byte(b.EndG>>8), byte(b.EndG), '|')
	}
	return string(k)
}

// Key returns the combination's comparable identity — the bucket tuple
// without counts or bounds. The plan cache uses it to match a
// combination across epochs (counts grow, bounds may be recomputed, the
// identity stays).
func (c *Combo) Key() string { return c.key() }

// Touches reports whether any of the combination's buckets satisfies
// affected(vertex, bucket) — the per-combination touched-bucket test
// revalidation uses to decide which cached bounds must be recomputed
// after an epoch bump (buckets that gained intervals, or boundary
// granules widened by out-of-range appends).
func (c *Combo) Touches(affected func(v int, b stats.Bucket) bool) bool {
	for v, b := range c.Buckets {
		if affected(v, b) {
			return true
		}
	}
	return false
}

// CountAffected returns the number of combinations in the cartesian
// product of bucketLists that contain at least one affected bucket —
// |Ω| − |Ω restricted to unaffected buckets| — without enumerating
// them. Revalidation uses it to bounce to a full re-plan when the
// affected region is too large to patch incrementally.
func CountAffected(bucketLists [][]stats.Bucket, affected func(v int, b stats.Bucket) bool) float64 {
	total, clean := 1.0, 1.0
	for v, list := range bucketLists {
		nClean := 0
		for _, b := range list {
			if !affected(v, b) {
				nClean++
			}
		}
		total *= float64(len(list))
		clean *= float64(nClean)
	}
	return total - clean
}

// EnumerateAffected walks exactly the combinations of the cartesian
// product that contain at least one affected bucket, in deterministic
// order, invoking fn for each bucket tuple. The decomposition is by
// first affected position: for every vertex v, it enumerates
// (unaffected_0 × ... × unaffected_{v-1}) × affected_v × (full_{v+1} ×
// ... × full_{n-1}), which partitions the affected region with no
// duplicates. Like enumerate, the buckets slice passed to fn is reused
// across calls; fn must copy it to retain it.
func EnumerateAffected(bucketLists [][]stats.Bucket, affected func(v int, b stats.Bucket) bool, fn func(buckets []stats.Bucket) error) error {
	n := len(bucketLists)
	cleanLists := make([][]stats.Bucket, n)
	dirtyLists := make([][]stats.Bucket, n)
	for v, list := range bucketLists {
		for _, b := range list {
			if affected(v, b) {
				dirtyLists[v] = append(dirtyLists[v], b)
			} else {
				cleanLists[v] = append(cleanLists[v], b)
			}
		}
	}
	for v := 0; v < n; v++ {
		if len(dirtyLists[v]) == 0 {
			continue
		}
		sub := make([][]stats.Bucket, n)
		empty := false
		for w := 0; w < n; w++ {
			switch {
			case w < v:
				sub[w] = cleanLists[w]
			case w == v:
				sub[w] = dirtyLists[w]
			default:
				sub[w] = bucketLists[w]
			}
			if len(sub[w]) == 0 {
				empty = true
			}
		}
		if empty {
			continue
		}
		if err := enumerate(sub, fn); err != nil {
			return err
		}
	}
	return nil
}

// boxesFor converts a combination's buckets into solver vertex boxes.
func boxesFor(matrices []*stats.Matrix, buckets []stats.Bucket) []solver.VertexBox {
	boxes := make([]solver.VertexBox, len(buckets))
	for i, b := range buckets {
		sLo, sHi, eLo, eHi := matrices[i].Box(b.StartG, b.EndG)
		boxes[i] = solver.VertexBox{StartLo: sLo, StartHi: sHi, EndLo: eLo, EndHi: eHi}
	}
	return boxes
}

// enumerate walks the full combination space Ω — the cartesian product
// of each collection's non-empty buckets — in deterministic row-major
// order, invoking fn for each combination's bucket tuple. The buckets
// slice passed to fn is reused across calls; fn must copy it to retain
// it. enumerate returns an error from fn, stopping early.
func enumerate(bucketLists [][]stats.Bucket, fn func(buckets []stats.Bucket) error) error {
	n := len(bucketLists)
	idx := make([]int, n)
	cur := make([]stats.Bucket, n)
	for {
		for i := 0; i < n; i++ {
			cur[i] = bucketLists[i][idx[i]]
		}
		if err := fn(cur); err != nil {
			return err
		}
		// Odometer increment, last position fastest.
		i := n - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(bucketLists[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return nil
		}
	}
}

// comboCount returns |Ω| for the given bucket lists.
func comboCount(bucketLists [][]stats.Bucket) float64 {
	total := 1.0
	for _, bl := range bucketLists {
		total *= float64(len(bl))
	}
	return total
}

// nbRes returns the number of candidate results of a bucket tuple.
func nbRes(buckets []stats.Bucket) float64 {
	n := 1.0
	for _, b := range buckets {
		n *= float64(b.Count)
	}
	return n
}

// validateInputs checks that the query and matrices are mutually
// consistent.
func validateInputs(q *query.Query, matrices []*stats.Matrix, k int) ([][]stats.Bucket, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("topbuckets: k must be >= 1, got %d", k)
	}
	if len(matrices) != q.NumVertices {
		return nil, fmt.Errorf("topbuckets: query %s has %d vertices but %d matrices given", q.Name, q.NumVertices, len(matrices))
	}
	lists := make([][]stats.Bucket, len(matrices))
	for i, m := range matrices {
		if m == nil {
			return nil, fmt.Errorf("topbuckets: matrix %d is nil", i)
		}
		lists[i] = m.Buckets()
		if len(lists[i]) == 0 {
			return nil, fmt.Errorf("topbuckets: collection %d has no data", i)
		}
	}
	return lists, nil
}
