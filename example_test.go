package tkij_test

import (
	"context"
	"fmt"

	"tkij"
)

// ExampleNewEngine builds an engine over two tiny collections. The
// offline phase (statistics + bucket store) runs lazily on first use;
// PrepareStats forces it eagerly so serving latency excludes it.
func ExampleNewEngine() {
	shifts := tkij.NewCollection("shifts", []tkij.Interval{
		{ID: 1, Start: 0, End: 10}, {ID: 2, Start: 20, End: 30},
	})
	alerts := tkij.NewCollection("alerts", []tkij.Interval{
		{ID: 3, Start: 10, End: 18}, {ID: 4, Start: 40, End: 50},
	})
	engine, err := tkij.NewEngine([]*tkij.Collection{shifts, alerts}, tkij.Options{
		Granules: 4, K: 1, Reducers: 2,
	})
	if err != nil {
		panic(err)
	}
	if err := engine.PrepareStats(); err != nil {
		panic(err)
	}
	fmt.Printf("engine over %d collections, k=%d, g=%d\n",
		len(engine.Collections()), engine.Options().K, engine.Options().Granules)
	// Output:
	// engine over 2 collections, k=1, g=4
}

// ExampleEngine_Execute runs a 2-way meets query: which alert starts
// exactly when a shift ends? PB makes the predicate Boolean (score 1
// on an exact Allen meets, 0 otherwise), so the top result is crisp.
func ExampleEngine_Execute() {
	shifts := tkij.NewCollection("shifts", []tkij.Interval{
		{ID: 1, Start: 0, End: 10}, {ID: 2, Start: 20, End: 30},
	})
	alerts := tkij.NewCollection("alerts", []tkij.Interval{
		{ID: 3, Start: 10, End: 18}, {ID: 4, Start: 40, End: 50},
	})
	engine, err := tkij.NewEngine([]*tkij.Collection{shifts, alerts}, tkij.Options{
		Granules: 4, K: 1, Reducers: 2,
	})
	if err != nil {
		panic(err)
	}
	q, err := tkij.NewQuery("shift-meets-alert", 2,
		[]tkij.Edge{{From: 0, To: 1, Pred: tkij.Meets(tkij.PB)}}, tkij.Avg{})
	if err != nil {
		panic(err)
	}
	report, err := engine.Execute(context.Background(), q)
	if err != nil {
		panic(err)
	}
	best := report.Results[0]
	fmt.Printf("best score %.2f: shift %d meets alert %d\n",
		best.Score, best.Tuple[0].ID, best.Tuple[1].ID)
	// Output:
	// best score 1.00: shift 1 meets alert 3
}

// ExampleEngine_Append streams new intervals into a serving engine: the
// bucket matrix is maintained incrementally and the store publishes a
// new epoch — no statistics job, no rebuild, and in-flight queries are
// never stalled. The repeated query shape reuses the cached plan,
// revalidated across the epoch bump.
func ExampleEngine_Append() {
	shifts := tkij.NewCollection("shifts", []tkij.Interval{
		{ID: 1, Start: 0, End: 10}, {ID: 2, Start: 20, End: 30},
	})
	alerts := tkij.NewCollection("alerts", []tkij.Interval{
		{ID: 3, Start: 12, End: 18},
	})
	engine, err := tkij.NewEngine([]*tkij.Collection{shifts, alerts}, tkij.Options{
		Granules: 4, K: 1, Reducers: 2,
	})
	if err != nil {
		panic(err)
	}
	q, err := tkij.NewQuery("shift-meets-alert", 2,
		[]tkij.Edge{{From: 0, To: 1, Pred: tkij.Meets(tkij.PB)}}, tkij.Avg{})
	if err != nil {
		panic(err)
	}
	before, err := engine.Execute(context.Background(), q)
	if err != nil {
		panic(err)
	}
	// A new alert arrives that starts exactly when shift 2 ends.
	epoch, err := engine.Append(1, []tkij.Interval{{ID: 9, Start: 30, End: 35}})
	if err != nil {
		panic(err)
	}
	after, err := engine.Execute(context.Background(), q)
	if err != nil {
		panic(err)
	}
	fmt.Printf("before: best %.2f\n", before.Results[0].Score)
	fmt.Printf("epoch %d: best %.2f (alert %d)\n",
		epoch, after.Results[0].Score, after.Results[0].Tuple[1].ID)
	// Output:
	// before: best 0.00
	// epoch 1: best 1.00 (alert 9)
}
