// Tweets: the paper's hashtag-analysis scenario (§1, §2). Intervals are
// hashtag lifespans; the sparks predicate finds pairs where a
// short-lived hashtag immediately precedes one lasting over 10x longer —
// the "small spark igniting a big fire" pattern the paper motivates with
// #JeSuisCharlie.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"tkij"
)

func main() {
	// Simulate hashtag lifespans over one week (hours): many short-lived
	// tags, a few long-running ones.
	rng := rand.New(rand.NewSource(7))
	const hours = 7 * 24
	var items []tkij.Interval
	for i := 0; i < 30000; i++ {
		start := rng.Int63n(hours)
		var life int64
		if rng.Float64() < 0.05 {
			life = 24 + rng.Int63n(72) // viral: 1-4 days
		} else {
			life = 1 + rng.Int63n(6) // ordinary: a few hours
		}
		items = append(items, tkij.Interval{ID: int64(i), Start: start, End: start + life})
	}
	tags := tkij.NewCollection("hashtags", items)

	// sparks(x, y): y starts after x ends and lasts > 10x longer. The
	// scored version tolerates a small gap via the greater ramp.
	pp := tkij.PairParams{Greater: tkij.Params{Lambda: 0, Rho: 6}}
	q, err := tkij.NewQuery("sparks", 2,
		[]tkij.Edge{{From: 0, To: 1, Pred: tkij.Sparks(pp)}},
		tkij.Avg{})
	if err != nil {
		log.Fatal(err)
	}

	engine, err := tkij.NewEngine([]*tkij.Collection{tags}, tkij.Options{
		K:        10,
		Granules: 24,
		Reducers: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := engine.ExecuteMapped(context.Background(), q, []int{0, 0})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("top spark pairs among %d hashtags (%v):\n", tags.Len(), report.Total)
	for i, r := range report.Results {
		x, y := r.Tuple[0], r.Tuple[1]
		fmt.Printf("#%2d score %.3f  spark #%d lived %dh -> fire #%d lived %dh (gap %dh)\n",
			i+1, r.Score, x.ID, x.Length(), y.ID, y.Length(), y.Start-x.End)
	}
}
