// Traffic: the paper's motivating network-monitoring scenario (§1,
// §4.3). A simulated firewall packet log is grouped into connections
// with the 60-second gap rule; a 3-way self-join with s-justBefore finds
// chains of connections that closely follow each other — potential
// lateral movement or cascading requests.
package main

import (
	"context"
	"fmt"
	"log"

	"tkij"
)

func main() {
	// Simulate a packet log and build connections [client, server,
	// start, end], exactly as §4.3.1 preprocesses its firewall data.
	packets := tkij.GenPackets(3000, 60, 86400, 42)
	conns := tkij.BuildConnections("connections", packets, 0)
	fmt.Printf("built %d connections from %d packets\n", conns.Len(), len(packets))

	avg := tkij.AvgLength(conns)
	fmt.Printf("average connection length: %.1fs\n", avg)

	// QjB,jB: sequences (x1, x2, x3) where each connection starts within
	// one average length after the previous one ends (Table 1, §4.3.1).
	q, err := tkij.QueryByName("QjB,jB", tkij.QueryEnv{Params: tkij.P3, Avg: avg})
	if err != nil {
		log.Fatal(err)
	}

	engine, err := tkij.NewEngine([]*tkij.Collection{conns}, tkij.Options{
		K:        15,
		Granules: 40,
		Reducers: 8,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Self-join: every query vertex reads the same connection list, the
	// paper's setup of copying the collection three times.
	report, err := engine.ExecuteMapped(context.Background(), q, []int{0, 0, 0})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntop connection chains (x1 -> x2 -> x3), %v total:\n", report.Total)
	for i, r := range report.Results {
		fmt.Printf("#%2d score %.3f  chain:", i+1, r.Score)
		for _, c := range r.Tuple {
			fmt.Printf(" [%d,%d]", c.Start, c.End)
		}
		fmt.Println()
	}

	// The same engine (and its statistics) answers a second query:
	// QsM,sM finds chains separated by exactly one average length — the
	// "delayed reaction" pattern.
	q2, err := tkij.QueryByName("QsM,sM", tkij.QueryEnv{Params: tkij.P3, Avg: avg})
	if err != nil {
		log.Fatal(err)
	}
	report2, err := engine.ExecuteMapped(context.Background(), q2, []int{0, 0, 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop delayed chains (QsM,sM), %v (statistics reused):\n", report2.Total)
	for i, r := range report2.Results {
		if i >= 5 {
			break
		}
		fmt.Printf("#%2d score %.3f\n", i+1, r.Score)
	}
}
