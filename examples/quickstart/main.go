// Quickstart: the smallest useful TKIJ program. Two synthetic interval
// collections, one scored predicate (s-meets with the P1 tolerance
// parameters), top-10 results.
package main

import (
	"context"
	"fmt"
	"log"

	"tkij"
)

func main() {
	// Two collections with the paper's synthetic parameters: uniform
	// starts in [0, 1e5], lengths in [1, 100].
	c1 := tkij.Uniform("C1", 50000, 1)
	c2 := tkij.Uniform("C2", 50000, 2)

	// An engine owns the collections and their (reusable) statistics.
	engine, err := tkij.NewEngine([]*tkij.Collection{c1, c2}, tkij.Options{
		K:        10,
		Granules: 40,
		Reducers: 8,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Query: pairs (x, y) where y starts roughly when x ends. s-meets
	// scores the match in [0, 1]; the Boolean Allen predicate is the
	// special case tkij.PB.
	q, err := tkij.NewQuery("almost-meets", 2,
		[]tkij.Edge{{From: 0, To: 1, Pred: tkij.Meets(tkij.P1)}},
		tkij.Avg{})
	if err != nil {
		log.Fatal(err)
	}

	report, err := engine.Execute(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("top-%d of %.0f candidate pairs in %v (%.2f%% pruned before the join)\n",
		len(report.Results), report.TopBuckets.TotalResults, report.Total,
		report.TopBuckets.PrunedFraction()*100)
	for i, r := range report.Results {
		x, y := r.Tuple[0], r.Tuple[1]
		fmt.Printf("#%2d score %.3f  x=[%d,%d] ends -> y=[%d,%d] starts (gap %+d)\n",
			i+1, r.Score, x.Start, x.End, y.Start, y.End, y.Start-x.End)
	}
}
