// Scheduling: a task-pipeline audit. Three collections hold the
// execution windows of build, test, and deploy jobs; the cyclic query
// Qs,f,m (starts, finishedBy, meets) finds triples where a test run
// starts with its build, a deploy finishes with the test, and the deploy
// begins right as the build ends — the signature of a tightly packed
// pipeline worth inspecting.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"tkij"
)

func genJobs(name string, n int, seed int64, minLen, maxLen int64) *tkij.Collection {
	rng := rand.New(rand.NewSource(seed))
	items := make([]tkij.Interval, n)
	for i := range items {
		start := rng.Int63n(100000)
		items[i] = tkij.Interval{
			ID:    int64(i),
			Start: start,
			End:   start + minLen + rng.Int63n(maxLen-minLen+1),
		}
	}
	return tkij.NewCollection(name, items)
}

func main() {
	builds := genJobs("builds", 8000, 1, 30, 300)
	tests := genJobs("tests", 8000, 2, 60, 600)
	deploys := genJobs("deploys", 8000, 3, 10, 120)

	// The cyclic Table-1 query Qs,f,m:
	//   s-starts(build, test)      - test starts with its build
	//   s-finishedBy(test, deploy) - deploy finishes with the test
	//   s-meets(build, deploy)     - deploy begins as the build ends
	q, err := tkij.QueryByName("Qs,f,m", tkij.QueryEnv{Params: tkij.P1})
	if err != nil {
		log.Fatal(err)
	}

	engine, err := tkij.NewEngine(
		[]*tkij.Collection{builds, tests, deploys},
		tkij.Options{K: 10, Granules: 40, Reducers: 8},
	)
	if err != nil {
		log.Fatal(err)
	}
	report, err := engine.Execute(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tightest build/test/deploy pipelines (query %s, %v):\n", q.Name, report.Total)
	fmt.Printf("pruned %.2f%% of %.0f candidate triples before the join\n\n",
		report.TopBuckets.PrunedFraction()*100, report.TopBuckets.TotalResults)
	for i, r := range report.Results {
		b, t, d := r.Tuple[0], r.Tuple[1], r.Tuple[2]
		fmt.Printf("#%2d score %.3f  build[%d,%d] test[%d,%d] deploy[%d,%d]\n",
			i+1, r.Score, b.Start, b.End, t.Start, t.End, d.Start, d.End)
	}

	// Compare with the strict Boolean interpretation: usually empty,
	// which is the paper's argument for scored predicates.
	qb, err := tkij.QueryByName("Qs,f,m", tkij.QueryEnv{Params: tkij.PB})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := tkij.Exhaustive(qb, []*tkij.Collection{
		sample(builds, 300), sample(tests, 300), sample(deploys, 300)}, 10)
	if err != nil {
		log.Fatal(err)
	}
	perfect := 0
	for _, r := range exact {
		if r.Score == 1.0 {
			perfect++
		}
	}
	fmt.Printf("\nBoolean interpretation on a 300-interval sample: %d exact matches "+
		"(scored semantics finds near-misses the Boolean query cannot)\n", perfect)
}

func sample(c *tkij.Collection, n int) *tkij.Collection {
	if c.Len() <= n {
		return c
	}
	return tkij.NewCollection(c.Name, c.Items[:n])
}
