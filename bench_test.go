package tkij

// One benchmark per paper table/figure (§4), wrapping the drivers in
// internal/experiments at a reduced scale so the full -bench=. sweep
// completes in minutes on one machine. cmd/tkij-bench runs the same
// drivers at full scale and prints the reproduced tables; EXPERIMENTS.md
// records paper-vs-measured shapes.

import (
	"context"
	"testing"
	"time"

	"tkij/internal/experiments"
	"tkij/internal/interval"
	"tkij/internal/join"
	"tkij/internal/scoring"
	"tkij/internal/solver"
)

// benchScale keeps each figure benchmark in the seconds range.
const benchScale = 0.05

func runExperiment(b *testing.B, fn func(context.Context, experiments.Config) ([]*experiments.Table, error)) {
	b.Helper()
	cfg := experiments.Config{Scale: benchScale, Reducers: 8}
	for i := 0; i < b.N; i++ {
		tables, err := fn(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables produced")
		}
	}
}

// BenchmarkStatsCollection regenerates the §4 statistics-collection
// timing note (time vs |Ci|).
func BenchmarkStatsCollection(b *testing.B) {
	runExperiment(b, experiments.StatsCollection)
}

// BenchmarkFig7ScoreDistribution regenerates Figure 7 (score
// distribution of the top results per predicate).
func BenchmarkFig7ScoreDistribution(b *testing.B) {
	runExperiment(b, experiments.Fig7ScoreDistribution)
}

// BenchmarkFig8Workload regenerates Figure 8a/b/c (LPT vs DTB: join
// time, max reducer time, min k-th score).
func BenchmarkFig8Workload(b *testing.B) {
	runExperiment(b, experiments.Fig8Workload)
}

// BenchmarkFig9Strategies regenerates Figure 9 (brute-force vs two-phase
// vs loose per-phase times on star queries, n = 3..5).
func BenchmarkFig9Strategies(b *testing.B) {
	runExperiment(b, experiments.Fig9Strategies)
}

// BenchmarkFig10Granules regenerates Figure 10a/b/c (effect of the
// granule count on time, imbalance, and pruning).
func BenchmarkFig10Granules(b *testing.B) {
	runExperiment(b, experiments.Fig10Granules)
}

// BenchmarkFig11Scalability regenerates Figure 11a/b/c (TKIJ vs
// All-Matrix and RCCIS as |Ci| grows).
func BenchmarkFig11Scalability(b *testing.B) {
	runExperiment(b, experiments.Fig11Scalability)
}

// BenchmarkEffectOfKSynthetic regenerates §4.2.6 (running time vs k on
// synthetic data).
func BenchmarkEffectOfKSynthetic(b *testing.B) {
	runExperiment(b, experiments.EffectOfKSynthetic)
}

// BenchmarkFig12DataDistribution regenerates Figure 12 (traffic data
// start/length histograms).
func BenchmarkFig12DataDistribution(b *testing.B) {
	runExperiment(b, experiments.Fig12DataDistribution)
}

// BenchmarkFig13TrafficScalability regenerates Figure 13 (traffic-data
// scalability of the seven queries).
func BenchmarkFig13TrafficScalability(b *testing.B) {
	runExperiment(b, experiments.Fig13TrafficScalability)
}

// BenchmarkFig14TrafficEffectOfK regenerates Figure 14 (traffic-data
// running time vs k).
func BenchmarkFig14TrafficEffectOfK(b *testing.B) {
	runExperiment(b, experiments.Fig14TrafficEffectOfK)
}

// BenchmarkAblations covers the DESIGN.md ablations: R-tree probes vs
// scans (BenchmarkAblationLocalIndex in spirit), pruning on/off, and
// round-robin distribution.
func BenchmarkAblations(b *testing.B) {
	runExperiment(b, experiments.Ablations)
}

// BenchmarkServing drives the multi-query serving experiment: repeated
// and concurrent executions on one warm engine with the dataset-resident
// bucket store.
func BenchmarkServing(b *testing.B) {
	runExperiment(b, experiments.Serving)
}

// BenchmarkPlanCache drives the plan-cache experiment: cold-miss vs
// warm-hit plan latency on repeated shapes, revalidation across append
// epoch bumps, and the outcome mix under concurrent ingest.
func BenchmarkPlanCache(b *testing.B) {
	runExperiment(b, experiments.PlanCache)
}

// --- serving-path benchmarks on one warm engine ---

// servingEngine builds a 3-collection engine and primes its statistics,
// bucket store, and (via one cold execution) the memoized R-trees.
func servingEngine(b *testing.B, q *Query) *Engine {
	b.Helper()
	cols := []*interval.Collection{
		Uniform("C1", 20000, 1), Uniform("C2", 20000, 2), Uniform("C3", 20000, 3),
	}
	engine, err := NewEngine(cols, Options{Granules: 20, K: 100, Reducers: 8})
	if err != nil {
		b.Fatal(err)
	}
	cold, err := engine.Execute(context.Background(), q)
	if err != nil {
		b.Fatal(err)
	}
	if cold.Join.RawIntervalsShuffled != 0 {
		b.Fatalf("cold run shuffled %d raw intervals; the store makes them resident", cold.Join.RawIntervalsShuffled)
	}
	b.Logf("cold run: join %v, total %v, %d trees built", cold.JoinTime, cold.Total, cold.TreesBuilt)
	return engine
}

// BenchmarkRepeatedQuery measures the warm serving path: after one cold
// execution primes the store, every further execution of the same query
// must shuffle zero raw intervals and rebuild zero R-trees — the join
// routes bucket references into memoized trees. Compare ns/op here with
// the cold-run join time logged at startup.
func BenchmarkRepeatedQuery(b *testing.B) {
	q, err := QueryByName("Qo,m", QueryEnv{Params: P1})
	if err != nil {
		b.Fatal(err)
	}
	engine := servingEngine(b, q)
	b.ResetTimer()
	var rebuilt, raw int64
	for i := 0; i < b.N; i++ {
		report, err := engine.Execute(context.Background(), q)
		if err != nil {
			b.Fatal(err)
		}
		rebuilt += report.TreesBuilt
		raw += report.Join.RawIntervalsShuffled
	}
	b.StopTimer()
	if rebuilt != 0 {
		b.Fatalf("warm executions rebuilt %d R-trees", rebuilt)
	}
	if raw != 0 {
		b.Fatalf("warm executions shuffled %d raw intervals", raw)
	}
}

// BenchmarkConcurrentQueries measures concurrent serving throughput:
// many goroutines executing Table-1 queries against one shared engine,
// store, and cross-reducer thresholds.
func BenchmarkConcurrentQueries(b *testing.B) {
	env := QueryEnv{Params: P1}
	names := []string{"Qb,b", "Qo,m", "Qs,m"}
	queries := make([]*Query, len(names))
	for i, n := range names {
		q, err := QueryByName(n, env)
		if err != nil {
			b.Fatal(err)
		}
		queries[i] = q
	}
	engine := servingEngine(b, queries[0])
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := engine.Execute(context.Background(), queries[i%len(queries)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkBatchedQueries measures throughput through the admission/
// batching layer: many goroutines submitting repeated shapes to one
// Server, coalesced into batches that share a pinned epoch, a
// single-flighted plan, a cross-query score floor and a bound memo.
// Compare with BenchmarkConcurrentQueries, the direct-execution
// equivalent of the same workload.
func BenchmarkBatchedQueries(b *testing.B) {
	env := QueryEnv{Params: P1}
	names := []string{"Qb,b", "Qo,m", "Qs,m"}
	queries := make([]*Query, len(names))
	for i, n := range names {
		q, err := QueryByName(n, env)
		if err != nil {
			b.Fatal(err)
		}
		queries[i] = q
	}
	engine := servingEngine(b, queries[0])
	server := NewServer(engine, ServerOptions{Window: 500 * time.Microsecond})
	defer server.Close()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := server.Submit(context.Background(), queries[i%len(queries)], nil); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.StopTimer()
	st := server.Stats()
	if st.Batches > 0 {
		b.ReportMetric(float64(st.Submitted)/float64(st.Batches), "queries/batch")
	}
}

// --- micro-benchmarks of the hot paths ---

// BenchmarkPredicateScore measures one scored-predicate evaluation.
func BenchmarkPredicateScore(b *testing.B) {
	p := Overlaps(P1)
	x := Interval{Start: 10, End: 60}
	y := Interval{Start: 40, End: 90}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Score(x, y)
	}
}

// BenchmarkSolverPairBounds measures one loose-strategy unit of work:
// tight bounds for a predicate over a bucket pair.
func BenchmarkSolverPairBounds(b *testing.B) {
	pred := scoring.Starts(scoring.P1)
	x := solver.VertexBox{StartLo: 0, StartHi: 2500, EndLo: 0, EndHi: 2600}
	y := solver.VertexBox{StartLo: 2500, StartHi: 5000, EndLo: 2500, EndHi: 5100}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		solver.PredicateBounds(pred, x, y, solver.Options{MaxNodes: 512, Eps: 1e-3})
	}
}

// BenchmarkIngest wraps the streaming-ingest experiment (append
// latency, delta-tree accounting, queries under concurrent ingest).
func BenchmarkIngest(b *testing.B) {
	runExperiment(b, experiments.Ingest)
}

// BenchmarkStanding wraps the standing-subscription experiment:
// push-per-append latency vs a sequential re-execute across append
// localities, with the affected/probed combination counts that drive
// the gap.
func BenchmarkStanding(b *testing.B) {
	runExperiment(b, experiments.Standing)
}

// BenchmarkAppendThenQuery measures the streaming serving loop — one
// append batch, one query on the new epoch — and proves the append
// economics on the counters: sealed (base) R-trees are rebuilt only for
// compacted buckets (sealed-rebuilds/op ~ compactions/op), touched
// buckets gain one small delta tree each, and everything else is
// reused. A cold rebuild on the final data must agree with the last
// warm answer.
func BenchmarkAppendThenQuery(b *testing.B) {
	cols := []*interval.Collection{
		Uniform("C1", 10000, 11), Uniform("C2", 10000, 12), Uniform("C3", 10000, 13),
	}
	engine, err := NewEngine(cols, Options{Granules: 20, K: 50, Reducers: 8})
	if err != nil {
		b.Fatal(err)
	}
	q, err := QueryByName("Qo,m", QueryEnv{Params: P1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2; i++ { // cold + warm: memoize the query's trees
		if _, err := engine.Execute(context.Background(), q); err != nil {
			b.Fatal(err)
		}
	}
	const batchSize = 32
	id := int64(50_000_000)
	var sealedRebuilds, deltaTrees, compactions, reused int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := make([]Interval, batchSize)
		for j := range batch {
			s := (int64(i)*7919 + int64(j)*104729) % 100000
			batch[j] = Interval{ID: id, Start: s, End: s + 1 + s%100}
			id++
		}
		before := engine.Store().Snapshot()
		if _, err := engine.Append(i%len(cols), batch); err != nil {
			b.Fatal(err)
		}
		report, err := engine.Execute(context.Background(), q)
		if err != nil {
			b.Fatal(err)
		}
		after := engine.Store().Snapshot()
		sealedRebuilds += after.TreesBuilt - before.TreesBuilt
		deltaTrees += after.DeltaTreesBuilt - before.DeltaTreesBuilt
		compactions += after.Compactions - before.Compactions
		reused += report.TreesReused
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(float64(sealedRebuilds)/n, "sealed-rebuilds/op")
	b.ReportMetric(float64(deltaTrees)/n, "delta-trees/op")
	b.ReportMetric(float64(compactions)/n, "compactions/op")
	b.ReportMetric(float64(reused)/n, "trees-reused/op")
	// The invariant behind the metrics: appends never wholesale-invalidate
	// memoized trees, so re-running the query right after the loop builds
	// nothing (sealed builds during the loop are compaction reseals or
	// first-time lazy builds of newly selected buckets, both one-off).
	if _, err := engine.Execute(context.Background(), q); err != nil {
		b.Fatal(err)
	}
	again, err := engine.Execute(context.Background(), q)
	if err != nil {
		b.Fatal(err)
	}
	if again.TreesBuilt != 0 || again.DeltaTreesBuilt != 0 {
		b.Fatalf("post-append re-run built %d sealed + %d delta trees; memoization did not survive the appends",
			again.TreesBuilt, again.DeltaTreesBuilt)
	}
	// Post-append answers must equal a cold rebuild over the same data.
	cold, err := NewEngine(cols, engine.Options())
	if err != nil {
		b.Fatal(err)
	}
	want, err := cold.Execute(context.Background(), q)
	if err != nil {
		b.Fatal(err)
	}
	got, err := engine.Execute(context.Background(), q)
	if err != nil {
		b.Fatal(err)
	}
	if !join.ScoreMultisetEqual(got.Results, want.Results, 1e-9) {
		b.Fatal("post-append results diverged from a cold rebuild")
	}
}

// BenchmarkEndToEndQuery measures a full TKIJ execution (statistics
// cached) on a mid-size 3-way query.
func BenchmarkEndToEndQuery(b *testing.B) {
	cols := []*interval.Collection{
		Uniform("C1", 20000, 1), Uniform("C2", 20000, 2), Uniform("C3", 20000, 3),
	}
	engine, err := NewEngine(cols, Options{Granules: 20, K: 100, Reducers: 8})
	if err != nil {
		b.Fatal(err)
	}
	if err := engine.PrepareStats(); err != nil {
		b.Fatal(err)
	}
	q, err := QueryByName("Qo,m", QueryEnv{Params: P1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Execute(context.Background(), q); err != nil {
			b.Fatal(err)
		}
	}
}
